#include "thresholdgt/threshold_decoder.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "kernels/decode_arena.hpp"
#include "kernels/kernel_set.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"

namespace pooled {

namespace {

/// Shared-atomics fallback, only for problem sizes whose per-lane partial
/// blocks would blow the arena budget. Integer accumulation keeps the
/// result identical to the fast paths.
void threshold_stats_atomic(const ThresholdGtInstance& instance, ThreadPool& pool,
                            std::uint64_t* psi_out, std::uint32_t* delta_star_out) {
  const std::uint32_t n = instance.n();
  const std::uint32_t m = instance.m();
  std::vector<std::atomic<std::uint32_t>> psi(n);
  std::vector<std::atomic<std::uint32_t>> delta_star(n);
  constexpr std::uint32_t kUnmarked = 0xFFFFFFFFu;
  parallel_for_chunked(pool, 0, m, 1, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint32_t> members;
    std::vector<std::uint32_t> mark(n, kUnmarked);
    for (std::size_t q = lo; q < hi; ++q) {
      const auto query = static_cast<std::uint32_t>(q);
      instance.query_members(query, members);
      const std::uint32_t outcome = instance.outcomes()[q];
      for (std::uint32_t entry : members) {
        if (mark[entry] != query) {
          mark[entry] = query;
          psi[entry].fetch_add(outcome, std::memory_order_relaxed);
          delta_star[entry].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  for (std::uint32_t i = 0; i < n; ++i) {
    psi_out[i] = psi[i].load(std::memory_order_relaxed);
    delta_star_out[i] = delta_star[i].load(std::memory_order_relaxed);
  }
}

/// Per-entry (positive-count, distinct-count) statistics via per-lane
/// partials: from the bit-packed pools when available (no regeneration,
/// no mark array -- the bitmap is already distinct), else by regenerating
/// members through the fused distinct-accumulate kernel.
void threshold_stats(const ThresholdGtInstance& instance, ThreadPool& pool,
                     std::uint64_t* psi_out, std::uint32_t* delta_star_out) {
  const std::uint32_t n = instance.n();
  const std::uint32_t m = instance.m();
  const unsigned lanes = pool.size();
  if (!DecodeArena::lane_budget_ok(lanes, n)) {
    threshold_stats_atomic(instance, pool, psi_out, delta_star_out);
    return;
  }
  const PackedPools* packed = instance.packed(&pool);
  LanePartials& partials = DecodeArena::local().lane_partials(lanes, n);
  const KernelSet& kernels = active_kernels();
  parallel_for_chunked(pool, 0, m, 1, [&](std::size_t lo, std::size_t hi) {
    const LaneStats lane = partials.acquire(ThreadPool::current_lane());
    if (packed != nullptr) {
      for (std::size_t q = lo; q < hi; ++q) {
        const std::uint64_t outcome = instance.outcomes()[q];
        const std::uint64_t* row = packed->row(static_cast<std::uint32_t>(q));
        for (std::size_t w = 0; w < packed->words; ++w) {
          std::uint64_t bits = row[w];
          while (bits != 0) {
            const auto entry = static_cast<std::uint32_t>(
                w * 64 + static_cast<unsigned>(__builtin_ctzll(bits)));
            lane.psi[entry] += outcome;
            lane.delta_star[entry] += 1;
            bits &= bits - 1;
          }
        }
      }
    } else {
      std::vector<std::uint32_t>& members = DecodeArena::local().members();
      for (std::size_t q = lo; q < hi; ++q) {
        instance.query_members(static_cast<std::uint32_t>(q), members);
        kernels.accumulate_query_distinct(
            members.data(), members.size(), static_cast<std::uint32_t>(q) + 1,
            instance.outcomes()[q], lane.mark, lane.psi, lane.delta_star);
      }
    }
  });
  bool first = true;
  for (unsigned slot = 0; slot < partials.slots(); ++slot) {
    const LaneStats lane = partials.claimed(slot);
    if (lane.psi == nullptr) continue;
    if (first) {
      std::copy_n(lane.psi, n, psi_out);
      std::copy_n(lane.delta_star, n, delta_star_out);
      first = false;
    } else {
      for (std::uint32_t i = 0; i < n; ++i) psi_out[i] += lane.psi[i];
      for (std::uint32_t i = 0; i < n; ++i) {
        delta_star_out[i] += lane.delta_star[i];
      }
    }
  }
  if (first) {
    std::fill_n(psi_out, n, 0);
    std::fill_n(delta_star_out, n, 0);
  }
}

}  // namespace

ThresholdDecodeResult decode_threshold_mn(const ThresholdGtInstance& instance,
                                          std::uint32_t k, ThreadPool& pool) {
  const std::uint32_t n = instance.n();
  const std::uint32_t m = instance.m();
  POOLED_REQUIRE(k <= n, "weight k exceeds signal length");

  double positives = 0.0;
  for (std::uint8_t outcome : instance.outcomes()) positives += outcome;
  const double mean_outcome = m == 0 ? 0.0 : positives / static_cast<double>(m);

  // Integer per-entry statistics (positive-test count and distinct-query
  // count), accumulated exactly: Σ_{a ∈ ∂*x_i} (y_a − ȳ) = psi_i − Δ*_i ȳ.
  // Integral accumulation makes the result independent of the chunking /
  // thread count; the centered score is one dispatched kernel pass.
  DecodeArena& arena = DecodeArena::local();
  EntryStats& stats = arena.stats();
  stats.resize(n);
  threshold_stats(instance, pool, stats.psi.data(), stats.delta_star.data());

  std::vector<double> scores(n);
  const KernelSet& kernels = active_kernels();
  parallel_for_chunked(pool, 0, n, 8192, [&](std::size_t lo, std::size_t hi) {
    kernels.score_centered(stats.psi.data(), stats.delta_star.data(), lo, hi,
                           mean_outcome, scores.data());
  });

  std::vector<std::uint32_t> support(k);
  select_top_k_into(kernels, scores.data(), n, k, arena.topk_values(n),
                    support.data());
  return ThresholdDecodeResult{Signal(n, std::move(support)), std::move(scores)};
}

}  // namespace pooled
