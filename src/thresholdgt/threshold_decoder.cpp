#include "thresholdgt/threshold_decoder.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"

namespace pooled {

ThresholdDecodeResult decode_threshold_mn(const ThresholdGtInstance& instance,
                                          std::uint32_t k, ThreadPool& pool) {
  const std::uint32_t n = instance.n();
  const std::uint32_t m = instance.m();
  POOLED_REQUIRE(k <= n, "weight k exceeds signal length");

  double positives = 0.0;
  for (std::uint8_t outcome : instance.outcomes()) positives += outcome;
  const double mean_outcome = m == 0 ? 0.0 : positives / static_cast<double>(m);

  // Integer per-entry statistics (positive-test count and distinct-query
  // count), accumulated exactly: Σ_{a ∈ ∂*x_i} (y_a − ȳ) = psi_i − Δ*_i ȳ.
  // Keeping the accumulation integral makes the result independent of the
  // chunking / thread count.
  std::vector<std::atomic<std::uint32_t>> psi(n);
  std::vector<std::atomic<std::uint32_t>> delta_star(n);
  constexpr std::uint32_t kUnmarked = 0xFFFFFFFFu;
  parallel_for_chunked(pool, 0, m, 1, [&](std::size_t lo, std::size_t hi) {
    std::vector<std::uint32_t> members;
    std::vector<std::uint32_t> mark(n, kUnmarked);
    for (std::size_t q = lo; q < hi; ++q) {
      const auto query = static_cast<std::uint32_t>(q);
      instance.query_members(query, members);
      const std::uint32_t outcome = instance.outcomes()[q];
      for (std::uint32_t entry : members) {
        if (mark[entry] != query) {
          mark[entry] = query;
          psi[entry].fetch_add(outcome, std::memory_order_relaxed);
          delta_star[entry].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<double> scores(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    scores[i] = static_cast<double>(psi[i].load(std::memory_order_relaxed)) -
                static_cast<double>(delta_star[i].load(std::memory_order_relaxed)) *
                    mean_outcome;
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + k, order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return ThresholdDecodeResult{Signal(n, std::move(order)), std::move(scores)};
}

}  // namespace pooled
