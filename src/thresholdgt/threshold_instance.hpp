// Threshold group testing: the open problem named in the paper's §VI.
//
// A query outputs 1 iff the number of one-entries it pools (with
// multiplicity) is at least a threshold T. T = 1 recovers binary group
// testing; T = ∞ reveals nothing. The paper conjectures its techniques
// extend here but calls the tailor-made application "a highly non-trivial
// challenge" -- this module provides the channel and an empirical MN-style
// decoder so the bench can chart what simple methods already achieve.
//
// Design guidance: a threshold-T query is most informative when its pool
// is expected to contain about T one-entries, i.e. Γ ≈ T n / k (the
// outcome is then maximally uncertain). threshold_gt_gamma() returns that
// size.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/signal.hpp"
#include "design/design.hpp"
#include "graph/packed_pools.hpp"

namespace pooled {

class ThreadPool;

/// Pool size putting the expected one-count at the threshold:
/// Γ = T n / k (clamped to [1, n]). The median of Bin(Γ, k/n) then sits
/// at T, maximizing the outcome entropy.
std::uint64_t threshold_gt_gamma(std::uint32_t n, std::uint32_t k,
                                 std::uint32_t threshold);

class ThresholdGtInstance {
 public:
  ThresholdGtInstance(std::shared_ptr<const PoolingDesign> design, std::uint32_t m,
                      std::uint32_t threshold, std::vector<std::uint8_t> outcomes);

  [[nodiscard]] std::uint32_t n() const { return design_->num_entries(); }
  [[nodiscard]] std::uint32_t m() const { return m_; }
  [[nodiscard]] std::uint32_t threshold() const { return threshold_; }
  /// 1 = pool contained at least `threshold` one-entries.
  [[nodiscard]] const std::vector<std::uint8_t>& outcomes() const {
    return outcomes_;
  }
  void query_members(std::uint32_t query, std::vector<std::uint32_t>& out) const;

  /// Bit-packed distinct-membership masks (see BinaryGtInstance::packed);
  /// nullptr when over the POOLED_PACK_BUDGET_MB budget.
  [[nodiscard]] const PackedPools* packed(ThreadPool* pool) const;

 private:
  std::shared_ptr<const PoolingDesign> design_;
  std::uint32_t m_;
  std::uint32_t threshold_;
  std::vector<std::uint8_t> outcomes_;
  mutable std::once_flag packed_once_;
  mutable std::unique_ptr<PackedPools> packed_;
};

/// Teacher step: runs m parallel threshold-T queries against `truth`.
std::unique_ptr<ThresholdGtInstance> make_threshold_instance(
    std::shared_ptr<const PoolingDesign> design, std::uint32_t m,
    std::uint32_t threshold, const Signal& truth, ThreadPool& pool);

}  // namespace pooled
