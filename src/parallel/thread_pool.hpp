// Fixed-size worker pool executing indexed task batches.
//
// The pool runs one *batch* at a time: run_tasks(count, fn) executes
// fn(0) .. fn(count-1) across the workers plus the calling thread and
// returns when all are done. Batches from different threads are
// serialized; nested run_tasks calls from inside a task execute inline
// (degrading gracefully instead of deadlocking).
//
// This shape -- bulk-synchronous indexed batches -- is all the library
// needs (queries, trials, and array chunks are all index spaces), and it
// keeps scheduling deterministic enough to reason about. Each batch owns
// its state via shared_ptr, so a worker that wakes late can only ever
// drain the batch it was woken for, never a successor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace pooled {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  /// A pool of size 1 executes everything on the calling thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + calling thread).
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(i) for all i in [0, count), blocking until completion.
  /// Task indices are claimed dynamically (atomic counter), so uneven
  /// tasks load-balance automatically.
  void run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Execution-lane id of the calling thread: workers are 1..workers(),
  /// every non-worker thread is 0. Within one run_tasks batch the set of
  /// executing threads is (some workers + the one caller), so lane ids
  /// are unique per concurrently-executing thread -- which is what lets
  /// per-lane scratch (kernels/decode_arena.hpp LanePartials) replace
  /// shared atomic accumulators. A worker of pool A driving pool B runs
  /// B's batch inline and keeps A's lane id; consumers must therefore
  /// treat lane ids as opaque keys, not dense indices (LanePartials maps
  /// ids to slots for exactly this reason).
  [[nodiscard]] static unsigned current_lane() { return lane_; }

  /// Shared process-wide pool (width = hardware_concurrency, overridable
  /// via POOLED_THREADS before first use).
  static ThreadPool& global();

 private:
  struct Batch {
    std::function<void(std::size_t)> fn;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  void worker_loop(unsigned lane);
  void participate(Batch& batch);

  /// Serializes run_tasks callers; held across a whole batch, so it is
  /// ordered strictly before the state mutex below.
  AnnotatedMutex batch_mutex_ POOLED_ACQUIRED_BEFORE(mutex_);
  AnnotatedMutex mutex_;  // protects current_/stop_ + cvs
  std::condition_variable_any cv_;
  std::condition_variable_any done_cv_;
  std::shared_ptr<Batch> current_ POOLED_GUARDED_BY(mutex_);  // null when idle
  bool stop_ POOLED_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
  static thread_local bool inside_task_;
  static thread_local unsigned lane_;
};

}  // namespace pooled
