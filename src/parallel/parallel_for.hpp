// Range-parallel loops on top of ThreadPool.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"

namespace pooled {

/// Splits [begin, end) into contiguous chunks of at least `grain` elements
/// and runs body(chunk_begin, chunk_end) across the pool.
///
/// The chunk decomposition is a pure function of (range, grain, pool
/// width), so the set of chunks -- and therefore any per-chunk
/// accumulation order -- is reproducible.
template <typename Body>
void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain, Body&& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  // Aim for ~4 chunks per execution lane to allow load balancing.
  const std::size_t target_chunks =
      std::max<std::size_t>(1, std::min(total / grain, std::size_t{pool.size()} * 4));
  const std::size_t chunk = (total + target_chunks - 1) / target_chunks;
  const std::size_t chunk_count = (total + chunk - 1) / chunk;
  pool.run_tasks(chunk_count, [&](std::size_t index) {
    const std::size_t lo = begin + index * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    body(lo, hi);
  });
}

/// Element-wise parallel loop: body(i) for i in [begin, end).
///
/// `grain` is the minimum chunk size handed to one task. The 1024
/// default suits loops doing ~100ns of work per element; kernel-heavy
/// call sites pass their own (e.g. the SIMD score kernels use 4096+ --
/// at a few cycles per element, chunk dispatch overhead dominates
/// anything smaller).
///
/// Scratch note: chunk bodies run on pool workers and/or the caller.
/// Per-thread scratch (kernels/decode_arena.hpp) must be acquired
/// *inside* the body by the executing thread, never captured from the
/// caller -- see the thread-affinity contract in decode_arena.hpp and
/// ThreadPool::current_lane().
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1024) {
  parallel_for_chunked(pool, begin, end, grain,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) body(i);
                       });
}

/// Parallel reduction: maps chunks with `body(lo, hi) -> T` and combines
/// partials left-to-right with `combine` (deterministic order).
template <typename T, typename Body, typename Combine>
T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T identity,
                  Body&& body, Combine&& combine, std::size_t grain = 1024) {
  if (begin >= end) return identity;
  const std::size_t total = end - begin;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t target_chunks =
      std::max<std::size_t>(1, std::min(total / grain, std::size_t{pool.size()} * 4));
  const std::size_t chunk = (total + target_chunks - 1) / target_chunks;
  const std::size_t chunk_count = (total + chunk - 1) / chunk;
  std::vector<T> partials(chunk_count, identity);
  pool.run_tasks(chunk_count, [&](std::size_t index) {
    const std::size_t lo = begin + index * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    partials[index] = body(lo, hi);
  });
  T result = identity;
  for (const T& partial : partials) result = combine(result, partial);
  return result;
}

}  // namespace pooled
