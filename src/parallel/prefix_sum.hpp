// Two-pass blocked parallel exclusive prefix sum.
#pragma once

#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"

namespace pooled {

/// In-place exclusive prefix sum over `values`; returns the grand total.
/// values[i] becomes sum of the original values[0..i).
template <typename T>
T parallel_exclusive_scan(ThreadPool& pool, std::vector<T>& values) {
  const std::size_t total = values.size();
  if (total == 0) return T{};
  const std::size_t lanes = pool.size();
  if (total < 4096 || lanes == 1) {
    T running{};
    for (auto& value : values) {
      const T next = running + value;
      value = running;
      running = next;
    }
    return running;
  }
  const std::size_t chunk = (total + lanes - 1) / lanes;
  const std::size_t chunk_count = (total + chunk - 1) / chunk;
  std::vector<T> block_totals(chunk_count, T{});
  // Pass 1: local exclusive scans, record block totals.
  pool.run_tasks(chunk_count, [&](std::size_t b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(total, lo + chunk);
    T running{};
    for (std::size_t i = lo; i < hi; ++i) {
      const T next = running + values[i];
      values[i] = running;
      running = next;
    }
    block_totals[b] = running;
  });
  // Scan of block totals (small, sequential).
  T grand{};
  for (auto& block : block_totals) {
    const T next = grand + block;
    block = grand;
    grand = next;
  }
  // Pass 2: add block offsets.
  pool.run_tasks(chunk_count, [&](std::size_t b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(total, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) values[i] += block_totals[b];
  });
  return grand;
}

}  // namespace pooled
