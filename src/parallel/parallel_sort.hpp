// Parallel merge sort (stable chunk sort + pairwise parallel merges).
//
// The paper's Algorithm 1 ends with sorting the n score values; this is
// the parallel sort the "Parallelized Reconstruction" discussion refers
// to. For p execution lanes: p locally-sorted runs, then log p rounds of
// pairwise merges, each round executed as a task batch.
#pragma once

#include <algorithm>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace pooled {

template <typename Iter, typename Compare>
void parallel_sort(ThreadPool& pool, Iter begin, Iter end, Compare comp) {
  const std::size_t total = static_cast<std::size_t>(end - begin);
  const std::size_t lanes = pool.size();
  if (total < 4096 || lanes == 1) {
    std::sort(begin, end, comp);
    return;
  }
  // Phase 1: sort `runs` contiguous chunks independently.
  std::size_t runs = lanes;
  const std::size_t chunk = (total + runs - 1) / runs;
  std::vector<std::size_t> bounds;  // run boundaries: bounds[i]..bounds[i+1]
  for (std::size_t off = 0; off < total; off += chunk) bounds.push_back(off);
  bounds.push_back(total);
  runs = bounds.size() - 1;
  pool.run_tasks(runs, [&](std::size_t r) {
    std::sort(begin + static_cast<std::ptrdiff_t>(bounds[r]),
              begin + static_cast<std::ptrdiff_t>(bounds[r + 1]), comp);
  });
  // Phase 2: merge adjacent run pairs until one run remains.
  while (bounds.size() > 2) {
    const std::size_t pairs = (bounds.size() - 1) / 2;
    pool.run_tasks(pairs, [&](std::size_t p) {
      const std::size_t lo = bounds[2 * p];
      const std::size_t mid = bounds[2 * p + 1];
      const std::size_t hi = bounds[2 * p + 2];
      std::inplace_merge(begin + static_cast<std::ptrdiff_t>(lo),
                         begin + static_cast<std::ptrdiff_t>(mid),
                         begin + static_cast<std::ptrdiff_t>(hi), comp);
    });
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if (next.back() != total) next.push_back(total);
    bounds = std::move(next);
  }
}

template <typename Iter>
void parallel_sort(ThreadPool& pool, Iter begin, Iter end) {
  parallel_sort(pool, begin, end, std::less<>());
}

}  // namespace pooled
