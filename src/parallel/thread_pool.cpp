#include "parallel/thread_pool.hpp"

#include "support/assert.hpp"
#include "support/env.hpp"

namespace pooled {

thread_local bool ThreadPool::inside_task_ = false;
thread_local unsigned ThreadPool::lane_ = 0;

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // The calling thread participates, so spawn one fewer worker.
  if (threads > 1) {
    workers_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i + 1); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::participate(Batch& batch) {
  // Claim and execute tasks until the batch drains.
  for (;;) {
    const std::size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.count) break;
    batch.fn(index);
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const LockGuard lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::worker_loop(unsigned lane) {
  inside_task_ = true;  // nested run_tasks from a worker executes inline
  lane_ = lane;
  std::shared_ptr<Batch> seen;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      LockGuard lock(mutex_);
      while (!stop_ && (current_ == nullptr || current_ == seen)) {
        cv_.wait(lock);
      }
      if (stop_) return;
      batch = current_;
      seen = batch;
    }
    participate(*batch);
  }
}

void ThreadPool::run_tasks(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (inside_task_ || workers_.empty() || count == 1) {
    // Inline execution: nested call, single-threaded pool, or trivial batch.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const LockGuard batch_lock(batch_mutex_);
  auto batch = std::make_shared<Batch>();
  batch->fn = fn;
  batch->count = count;
  batch->remaining.store(count, std::memory_order_relaxed);
  {
    const LockGuard lock(mutex_);
    POOLED_DCHECK(current_ == nullptr,
                  "batch_mutex_ is held, so no other batch can be current");
    current_ = batch;
  }
  cv_.notify_all();
  inside_task_ = true;
  participate(*batch);
  inside_task_ = false;
  {
    LockGuard lock(mutex_);
    while (batch->remaining.load(std::memory_order_acquire) != 0) {
      done_cv_.wait(lock);
    }
    current_ = nullptr;
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<unsigned>(env_i64("POOLED_THREADS", 0)));
  return pool;
}

}  // namespace pooled
