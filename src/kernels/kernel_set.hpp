// Runtime-dispatched decode kernels.
//
// Every decode in the system bottoms out in a handful of tight loops:
// evaluating the four MN score variants over per-entry statistics,
// folding a query's membership draws into those statistics, regenerating
// a query's draws from the Philox stream, word-at-a-time operations on
// bit-packed pool masks for the one-bit channels, and top-k selection
// over the n scores. This header names those loops as a `KernelSet` of
// function pointers with a portable scalar implementation plus SIMD
// variants (SSE4.2 / AVX2 on x86-64, NEON on aarch64) selected once at
// startup by CPUID-style feature detection.
//
// Contract: every variant is *bit-identical* to the scalar reference --
// same IEEE-754 operations in the same per-element order (the library
// builds with -ffp-contract=off so no variant, scalar included, fuses a
// multiply-subtract), same integer sums, same tie-breaks. The
// differential suite (tests/test_kernels.cpp) asserts this on every ISA
// the host can run.
//
// Override for testing/benching: set POOLED_KERNELS=scalar|sse42|avx2|
// neon before the first decode, or call set_active_kernels() in-process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pooled {

enum class KernelIsa : std::uint8_t { Scalar, Sse42, Avx2, Neon };

/// Stable lowercase name ("scalar", "sse42", "avx2", "neon").
[[nodiscard]] const char* kernel_isa_name(KernelIsa isa);

struct KernelSet {
  KernelIsa isa = KernelIsa::Scalar;

  // -- MN score evaluation (one slot per MnScore variant) ---------------
  // All ranges are [lo, hi) so parallel_for chunks can call directly.
  // Conversions u64/u32 -> double are exact round-to-nearest (the SIMD
  // variants use the split-high/low magic-constant form, which rounds
  // identically to a scalar static_cast for the full integer range).

  /// out[i] = psi[i] - delta_star[i] * center  (CentralizedPsi; the
  /// threshold-GT decoder reuses it with center = mean outcome).
  void (*score_centered)(const std::uint64_t* psi, const std::uint32_t* delta_star,
                         std::size_t lo, std::size_t hi, double center,
                         double* out);
  /// out[i] = psi[i]  (RawPsi).
  void (*score_raw)(const std::uint64_t* psi, std::size_t lo, std::size_t hi,
                    double* out);
  /// out[i] = delta_star[i] == 0 ? 0 : psi[i] / delta_star[i]  (NormalizedPsi).
  void (*score_normalized)(const std::uint64_t* psi, const std::uint32_t* delta_star,
                           std::size_t lo, std::size_t hi, double* out);
  /// out[i] = psi_multi[i] - delta[i] * center  (MultiEdgePsi).
  void (*score_multiedge)(const std::uint64_t* psi_multi, const std::uint64_t* delta,
                          std::size_t lo, std::size_t hi, double center,
                          double* out);

  // -- fused statistics accumulation ------------------------------------

  /// Folds one query's raw membership draws (duplicates included) into
  /// the per-entry aggregates. `epoch` must be unique to this query
  /// within the lifetime of `mark` and distinct from mark's initial fill
  /// (zeroed arena blocks pair with epoch = query+1): first occurrences
  /// bump psi/delta_star, every occurrence bumps psi_multi/delta.
  void (*accumulate_query)(const std::uint32_t* members, std::size_t count,
                           std::uint32_t epoch, std::uint64_t yq,
                           std::uint32_t* mark, std::uint64_t* psi,
                           std::uint64_t* psi_multi, std::uint64_t* delta,
                           std::uint32_t* delta_star);

  /// Distinct-only flavor (threshold/binary channels): first occurrences
  /// bump psi by yq and delta_star by one; duplicates are ignored.
  void (*accumulate_query_distinct)(const std::uint32_t* members, std::size_t count,
                                    std::uint32_t epoch, std::uint64_t yq,
                                    std::uint32_t* mark, std::uint64_t* psi,
                                    std::uint32_t* delta_star);

  // -- query regeneration ------------------------------------------------

  /// `count` uniform draws from [0, n) with replacement, bit-identical to
  /// PhiloxStream(seed, stream) + sample_with_replacement: the Philox
  /// 4x32-10 outputs of blocks 0,1,... are consumed 32 bits at a time in
  /// order and Lemire-mapped with rejection below `threshold`
  /// (= (2^32 - n) % n, precomputed by the caller). `key` is the
  /// splitmix64-mixed seed, `stream` the splitmix64-mixed stream id.
  void (*sample_u32)(std::uint32_t key0, std::uint32_t key1, std::uint64_t stream,
                     std::uint32_t n, std::uint32_t threshold, std::size_t count,
                     std::uint32_t* out);

  // -- bit-packed pool masks (64 entries per word) -----------------------

  /// dst[w] |= src[w].
  void (*or_words)(std::uint64_t* dst, const std::uint64_t* src, std::size_t words);
  /// popcount over a.
  std::uint64_t (*popcount_words)(const std::uint64_t* a, std::size_t words);
  /// popcount(a & ~mask).
  std::uint64_t (*andnot_popcount)(const std::uint64_t* a, const std::uint64_t* mask,
                                   std::size_t words);
  /// popcount(a & b).
  std::uint64_t (*and_popcount)(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);

  // -- top-k selection ---------------------------------------------------

  /// Number of scores strictly greater than `pivot`.
  std::size_t (*count_greater)(const double* scores, std::size_t n, double pivot);
  /// Writes the ascending indices i with scores[i] > pivot, plus the
  /// first `ties` indices (in ascending order) with scores[i] == pivot,
  /// into out -- exactly k = (#greater + ties) total. With pivot = the
  /// k-th largest score this is the deterministic (score desc, index asc)
  /// top-k of select_top_k.
  void (*topk_fill)(const double* scores, std::size_t n, double pivot,
                    std::size_t ties, std::uint32_t* out, std::size_t k);
};

/// The set chosen at startup (best available ISA, or the POOLED_KERNELS
/// override). Cheap to call; fetch once per kernel-heavy region.
[[nodiscard]] const KernelSet& active_kernels();

/// The named variant, or nullptr when this build/CPU cannot run it.
[[nodiscard]] const KernelSet* kernels_for(KernelIsa isa);

/// Every variant runnable on this host (scalar always included). The
/// differential tests iterate this.
[[nodiscard]] std::vector<KernelIsa> available_kernel_isas();

/// Replaces the active set (tests/benches compare variants in-process);
/// returns the previously active set. Do not call concurrently with
/// decodes.
const KernelSet& set_active_kernels(const KernelSet& set);

/// Exact deterministic top-k under (score desc, index asc) via the given
/// kernel set: nth_element over a values copy finds the k-th largest
/// score (branch-light: plain doubles, no index indirection), then one
/// SIMD scan fills the k ascending indices. `values_scratch` must hold n
/// doubles (clobbered), `out` holds k indices. Scores must be NaN-free.
void select_top_k_into(const KernelSet& kernels, const double* scores,
                       std::size_t n, std::uint32_t k, double* values_scratch,
                       std::uint32_t* out);

}  // namespace pooled
