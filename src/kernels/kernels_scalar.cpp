// Portable scalar KernelSet: the reference every SIMD variant must match
// bit for bit.
#include "kernels/kernel_set.hpp"
#include "kernels/kernels_common.hpp"

namespace pooled {

const KernelSet* scalar_kernels_impl() {
  using namespace kernels;
  static const KernelSet set = {
      KernelIsa::Scalar,
      scalar_score_centered,
      scalar_score_raw,
      scalar_score_normalized,
      scalar_score_multiedge,
      scalar_accumulate_query,
      scalar_accumulate_query_distinct,
      scalar_sample_u32,
      scalar_or_words,
      scalar_popcount_words,
      scalar_andnot_popcount,
      scalar_and_popcount,
      scalar_count_greater,
      scalar_topk_fill,
  };
  return &set;
}

}  // namespace pooled
