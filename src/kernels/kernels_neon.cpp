// NEON KernelSet (aarch64). vcvtq_f64_u64 is an exact, correctly-rounded
// u64 -> f64 conversion, so the score kernels match the scalar casts
// directly; popcounts ride vcnt. Sampling and the scatter-bound
// accumulators share the scalar bodies.
#include "kernels/kernel_set.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "kernels/kernels_common.hpp"

namespace pooled {

namespace {

using std::size_t;
using std::uint32_t;
using std::uint64_t;

void neon_score_centered(const uint64_t* psi, const uint32_t* delta_star,
                         size_t lo, size_t hi, double center, double* out) {
  const float64x2_t center_v = vdupq_n_f64(center);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const float64x2_t p = vcvtq_f64_u64(vld1q_u64(psi + i));
    const float64x2_t d =
        vcvtq_f64_u64(vmovl_u32(vld1_u32(delta_star + i)));
    // Separate mul + sub (no vmls fusion) to stay bit-identical to the
    // scalar reference.
    vst1q_f64(out + i, vsubq_f64(p, vmulq_f64(d, center_v)));
  }
  kernels::scalar_score_centered(psi, delta_star, i, hi, center, out);
}

void neon_score_raw(const uint64_t* psi, size_t lo, size_t hi, double* out) {
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    vst1q_f64(out + i, vcvtq_f64_u64(vld1q_u64(psi + i)));
  }
  kernels::scalar_score_raw(psi, i, hi, out);
}

void neon_score_normalized(const uint64_t* psi, const uint32_t* delta_star,
                           size_t lo, size_t hi, double* out) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t zero = vdupq_n_f64(0.0);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const float64x2_t p = vcvtq_f64_u64(vld1q_u64(psi + i));
    const float64x2_t d = vcvtq_f64_u64(vmovl_u32(vld1_u32(delta_star + i)));
    const uint64x2_t is_zero = vceqq_f64(d, zero);
    const float64x2_t safe = vbslq_f64(is_zero, one, d);
    const float64x2_t q = vdivq_f64(p, safe);
    vst1q_f64(out + i, vbslq_f64(is_zero, zero, q));
  }
  kernels::scalar_score_normalized(psi, delta_star, i, hi, out);
}

void neon_score_multiedge(const uint64_t* psi_multi, const uint64_t* delta,
                          size_t lo, size_t hi, double center, double* out) {
  const float64x2_t center_v = vdupq_n_f64(center);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const float64x2_t p = vcvtq_f64_u64(vld1q_u64(psi_multi + i));
    const float64x2_t d = vcvtq_f64_u64(vld1q_u64(delta + i));
    vst1q_f64(out + i, vsubq_f64(p, vmulq_f64(d, center_v)));
  }
  kernels::scalar_score_multiedge(psi_multi, delta, i, hi, center, out);
}

void neon_or_words(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    vst1q_u64(dst + w, vorrq_u64(vld1q_u64(dst + w), vld1q_u64(src + w)));
  }
  kernels::scalar_or_words(dst + w, src + w, words - w);
}

inline uint64_t popcount_u64x2(uint64x2_t v) {
  const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(counts);  // <= 128, fits the u8 horizontal sum
}

uint64_t neon_popcount_words(const uint64_t* a, size_t words) {
  uint64_t total = 0;
  size_t w = 0;
  for (; w + 2 <= words; w += 2) total += popcount_u64x2(vld1q_u64(a + w));
  return total + kernels::scalar_popcount_words(a + w, words - w);
}

uint64_t neon_andnot_popcount(const uint64_t* a, const uint64_t* mask,
                              size_t words) {
  uint64_t total = 0;
  size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    total += popcount_u64x2(vbicq_u64(vld1q_u64(a + w), vld1q_u64(mask + w)));
  }
  return total + kernels::scalar_andnot_popcount(a + w, mask + w, words - w);
}

uint64_t neon_and_popcount(const uint64_t* a, const uint64_t* b, size_t words) {
  uint64_t total = 0;
  size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    total += popcount_u64x2(vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
  }
  return total + kernels::scalar_and_popcount(a + w, b + w, words - w);
}

size_t neon_count_greater(const double* scores, size_t n, double pivot) {
  const float64x2_t pivot_v = vdupq_n_f64(pivot);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t gt = vcgtq_f64(vld1q_f64(scores + i), pivot_v);
    // All-ones lanes: shift to 0/1 and add.
    count += vaddvq_u64(vshrq_n_u64(gt, 63));
  }
  return static_cast<size_t>(count) +
         kernels::scalar_count_greater(scores + i, n - i, pivot);
}

}  // namespace

const KernelSet* neon_kernels_impl() {
  static const KernelSet set = {
      KernelIsa::Neon,
      neon_score_centered,
      neon_score_raw,
      neon_score_normalized,
      neon_score_multiedge,
      kernels::scalar_accumulate_query,
      kernels::scalar_accumulate_query_distinct,
      kernels::scalar_sample_u32,
      neon_or_words,
      neon_popcount_words,
      neon_andnot_popcount,
      neon_and_popcount,
      neon_count_greater,
      kernels::scalar_topk_fill,
  };
  return &set;
}

}  // namespace pooled

#else  // !aarch64

namespace pooled {
const KernelSet* neon_kernels_impl() { return nullptr; }
}  // namespace pooled

#endif
