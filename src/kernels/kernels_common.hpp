// Scalar reference bodies shared by every KernelSet variant.
//
// INTERNAL to src/kernels/: the scalar set wires these directly; the SIMD
// sets use them for loop tails and for the lanes SIMD cannot help
// (scatter-heavy accumulation). Keeping one definition per loop is what
// makes "bit-identical across variants" checkable instead of aspirational.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "rng/philox.hpp"

namespace pooled::kernels {

// ---------------------------------------------------------------------------
// Scores

inline void scalar_score_centered(const std::uint64_t* psi,
                                  const std::uint32_t* delta_star, std::size_t lo,
                                  std::size_t hi, double center, double* out) {
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = static_cast<double>(psi[i]) -
             static_cast<double>(delta_star[i]) * center;
  }
}

inline void scalar_score_raw(const std::uint64_t* psi, std::size_t lo,
                             std::size_t hi, double* out) {
  for (std::size_t i = lo; i < hi; ++i) out[i] = static_cast<double>(psi[i]);
}

inline void scalar_score_normalized(const std::uint64_t* psi,
                                    const std::uint32_t* delta_star, std::size_t lo,
                                    std::size_t hi, double* out) {
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = delta_star[i] == 0 ? 0.0
                                : static_cast<double>(psi[i]) /
                                      static_cast<double>(delta_star[i]);
  }
}

inline void scalar_score_multiedge(const std::uint64_t* psi_multi,
                                   const std::uint64_t* delta, std::size_t lo,
                                   std::size_t hi, double center, double* out) {
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = static_cast<double>(psi_multi[i]) -
             static_cast<double>(delta[i]) * center;
  }
}

// ---------------------------------------------------------------------------
// Fused accumulation (inherently scatter-bound; all variants share it)

inline void scalar_accumulate_query(const std::uint32_t* members, std::size_t count,
                                    std::uint32_t epoch, std::uint64_t yq,
                                    std::uint32_t* mark, std::uint64_t* psi,
                                    std::uint64_t* psi_multi, std::uint64_t* delta,
                                    std::uint32_t* delta_star) {
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t entry = members[j];
    if (mark[entry] != epoch) {
      mark[entry] = epoch;
      psi[entry] += yq;
      delta_star[entry] += 1;
    }
    psi_multi[entry] += yq;
    delta[entry] += 1;
  }
}

inline void scalar_accumulate_query_distinct(const std::uint32_t* members,
                                             std::size_t count, std::uint32_t epoch,
                                             std::uint64_t yq, std::uint32_t* mark,
                                             std::uint64_t* psi,
                                             std::uint32_t* delta_star) {
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t entry = members[j];
    if (mark[entry] != epoch) {
      mark[entry] = epoch;
      psi[entry] += yq;
      delta_star[entry] += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// Philox sampling

/// Sequential 32-bit Philox consumption: block b yields out[0..3] in
/// order (PhiloxStream packs out[1]:out[0] then out[3]:out[2] into u64s
/// and sample_with_replacement reads low half first -- the flattened
/// 32-bit order is exactly out[0], out[1], out[2], out[3]).
struct ScalarPhiloxCursor {
  std::array<std::uint32_t, 2> key;
  std::uint64_t stream;
  std::uint64_t block = 0;
  std::array<std::uint32_t, 4> buffer{};
  unsigned pos = 4;  // consumed entries of buffer

  std::uint32_t next() {
    if (pos == 4) {
      const std::array<std::uint32_t, 4> counter = {
          static_cast<std::uint32_t>(block), static_cast<std::uint32_t>(block >> 32),
          static_cast<std::uint32_t>(stream),
          static_cast<std::uint32_t>(stream >> 32)};
      buffer = philox4x32(counter, key);
      pos = 0;
      ++block;
    }
    return buffer[pos++];
  }
};

inline void scalar_sample_u32(std::uint32_t key0, std::uint32_t key1,
                              std::uint64_t stream, std::uint32_t n,
                              std::uint32_t threshold, std::size_t count,
                              std::uint32_t* out) {
  ScalarPhiloxCursor cursor{{key0, key1}, stream};
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t m = static_cast<std::uint64_t>(cursor.next()) * n;
    while (static_cast<std::uint32_t>(m) < threshold) {
      m = static_cast<std::uint64_t>(cursor.next()) * n;
    }
    out[i] = static_cast<std::uint32_t>(m >> 32);
  }
}

// ---------------------------------------------------------------------------
// Bit-packed pool words

inline void scalar_or_words(std::uint64_t* dst, const std::uint64_t* src,
                            std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

inline std::uint64_t scalar_popcount_words(const std::uint64_t* a,
                                           std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[w]));
  }
  return total;
}

inline std::uint64_t scalar_andnot_popcount(const std::uint64_t* a,
                                            const std::uint64_t* mask,
                                            std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & ~mask[w]));
  }
  return total;
}

inline std::uint64_t scalar_and_popcount(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t w = 0; w < words; ++w) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[w] & b[w]));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Top-k scans

inline std::size_t scalar_count_greater(const double* scores, std::size_t n,
                                        double pivot) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += scores[i] > pivot ? 1 : 0;
  return count;
}

inline void scalar_topk_fill(const double* scores, std::size_t n, double pivot,
                             std::size_t ties, std::uint32_t* out, std::size_t k) {
  std::size_t taken = 0;
  std::size_t ties_taken = 0;
  for (std::size_t i = 0; i < n && taken < k; ++i) {
    const double s = scores[i];
    if (s > pivot) {
      out[taken++] = static_cast<std::uint32_t>(i);
    } else if (s == pivot && ties_taken < ties) {
      out[taken++] = static_cast<std::uint32_t>(i);
      ++ties_taken;
    }
  }
}

}  // namespace pooled::kernels
