// AVX2 KernelSet. Compiled with -mavx2 -mpopcnt (CMake sets per-file
// flags); only ever *executed* after runtime dispatch confirms the CPU
// supports both, so the rest of the library keeps its baseline ISA.
//
// Bit-identity notes:
//  * u64 -> double uses the split high/low magic-constant form: both
//    roundings are exact except the final add, so the result is the
//    correctly-rounded value — identical to a scalar static_cast for the
//    full 64-bit range.
//  * score kernels use separate mul/sub intrinsics (never FMA), matching
//    the scalar reference compiled with -ffp-contract=off.
//  * sample_u32 vectorizes whole 8-block Philox groups and commits an
//    8-wide Lemire map only when the group has no rejected draw;
//    otherwise it falls back to the shared scalar stepper over the same
//    staged values, so the consumed 32-bit sequence is identical.
#include "kernels/kernel_set.hpp"

#if defined(__x86_64__) && defined(__AVX2__) && defined(__POPCNT__)

#include <immintrin.h>

#include <cstring>

#include "kernels/kernels_common.hpp"

namespace pooled {

namespace {

using std::size_t;
using std::uint32_t;
using std::uint64_t;

// -- exact integer -> double conversion -------------------------------------

/// Exact u64 -> f64 for all inputs (Mysticial's construction): the high
/// 32 bits ride in a 2^84-scaled double, the low 32 bits in a 2^52-scaled
/// one; the subtraction is exact and the single final add rounds once.
inline __m256d u64_to_f64(__m256i v) {
  const __m256d exp84 = _mm256_set1_pd(19342813113834066795298816.0);  // 2^84
  const __m256d exp52 = _mm256_set1_pd(4503599627370496.0);            // 2^52
  const __m256d exp84_52 = _mm256_set1_pd(19342813118337666422669312.0);
  __m256i hi = _mm256_srli_epi64(v, 32);
  hi = _mm256_or_si256(hi, _mm256_castpd_si256(exp84));
  __m256i lo = _mm256_blend_epi32(v, _mm256_castpd_si256(exp52), 0b10101010);
  const __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(hi), exp84_52);
  return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
}

/// Exact u32 -> f64 (values fit the 2^52 mantissa window directly).
inline __m256d u32_to_f64(__m128i v) {
  const __m256d exp52 = _mm256_set1_pd(4503599627370496.0);  // 2^52
  __m256i wide = _mm256_cvtepu32_epi64(v);
  wide = _mm256_or_si256(wide, _mm256_castpd_si256(exp52));
  return _mm256_sub_pd(_mm256_castsi256_pd(wide), exp52);
}

// -- scores -----------------------------------------------------------------

void avx2_score_centered(const uint64_t* psi, const uint32_t* delta_star,
                         size_t lo, size_t hi, double center, double* out) {
  const __m256d center_v = _mm256_set1_pd(center);
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d p =
        u64_to_f64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(psi + i)));
    const __m256d d = u32_to_f64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(delta_star + i)));
    _mm256_storeu_pd(out + i, _mm256_sub_pd(p, _mm256_mul_pd(d, center_v)));
  }
  kernels::scalar_score_centered(psi, delta_star, i, hi, center, out);
}

void avx2_score_raw(const uint64_t* psi, size_t lo, size_t hi, double* out) {
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    _mm256_storeu_pd(out + i, u64_to_f64(_mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(psi + i))));
  }
  kernels::scalar_score_raw(psi, i, hi, out);
}

void avx2_score_normalized(const uint64_t* psi, const uint32_t* delta_star,
                           size_t lo, size_t hi, double* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d p =
        u64_to_f64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(psi + i)));
    const __m256d d = u32_to_f64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(delta_star + i)));
    const __m256d is_zero = _mm256_cmp_pd(d, zero, _CMP_EQ_OQ);
    // Divide by 1 in the zero lanes (avoids spurious FP flags), then mask.
    const __m256d safe = _mm256_blendv_pd(d, one, is_zero);
    const __m256d q = _mm256_div_pd(p, safe);
    _mm256_storeu_pd(out + i, _mm256_andnot_pd(is_zero, q));
  }
  kernels::scalar_score_normalized(psi, delta_star, i, hi, out);
}

void avx2_score_multiedge(const uint64_t* psi_multi, const uint64_t* delta,
                          size_t lo, size_t hi, double center, double* out) {
  const __m256d center_v = _mm256_set1_pd(center);
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d p = u64_to_f64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(psi_multi + i)));
    const __m256d d = u64_to_f64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(delta + i)));
    _mm256_storeu_pd(out + i, _mm256_sub_pd(p, _mm256_mul_pd(d, center_v)));
  }
  kernels::scalar_score_multiedge(psi_multi, delta, i, hi, center, out);
}

// -- Philox sampling --------------------------------------------------------

/// 32x32 -> 64 mulhi/mullo on all eight u32 lanes.
inline void mulhilo8(__m256i m, __m256i v, __m256i& hi, __m256i& lo) {
  const __m256i pe = _mm256_mul_epu32(v, m);  // products of lanes 0,2,4,6
  const __m256i po = _mm256_mul_epu32(_mm256_srli_epi64(v, 32), m);
  hi = _mm256_blend_epi32(_mm256_srli_epi64(pe, 32), po, 0b10101010);
  lo = _mm256_blend_epi32(pe, _mm256_slli_epi64(po, 32), 0b10101010);
}

/// Eight Philox4x32-10 blocks at once; outputs staged in the scalar
/// stream's 32-bit consumption order (block-major, word-minor).
struct PhiloxStage8 {
  PhiloxStage8(uint32_t k0, uint32_t k1, uint64_t s)
      : key0(k0), key1(k1), stream(s) {}

  uint32_t key0, key1;
  uint64_t stream;
  uint64_t next_block = 0;
  alignas(32) uint32_t vals[32] = {};
  size_t pos = 32;  // consumed entries

  void refill() {
    const __m256i m0 = _mm256_set1_epi32(static_cast<int>(0xD2511F53u));
    const __m256i m1 = _mm256_set1_epi32(static_cast<int>(0xCD9E8D57u));
    const __m256i w0 = _mm256_set1_epi32(static_cast<int>(0x9E3779B9u));
    const __m256i w1 = _mm256_set1_epi32(static_cast<int>(0xBB67AE85u));
    __m256i c0 = _mm256_add_epi32(
        _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(next_block))),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    __m256i c1 = _mm256_setzero_si256();  // caller guarantees block < 2^32
    __m256i c2 = _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(stream)));
    __m256i c3 =
        _mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(stream >> 32)));
    __m256i k0 = _mm256_set1_epi32(static_cast<int>(key0));
    __m256i k1 = _mm256_set1_epi32(static_cast<int>(key1));
    for (int round = 0; round < 10; ++round) {
      __m256i hi0, lo0, hi1, lo1;
      mulhilo8(m0, c0, hi0, lo0);
      mulhilo8(m1, c2, hi1, lo1);
      c0 = _mm256_xor_si256(_mm256_xor_si256(hi1, c1), k0);
      c1 = lo1;
      c2 = _mm256_xor_si256(_mm256_xor_si256(hi0, c3), k1);
      c3 = lo0;
      k0 = _mm256_add_epi32(k0, w0);
      k1 = _mm256_add_epi32(k1, w1);
    }
    alignas(32) uint32_t words[4][8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[0]), c0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[1]), c1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[2]), c2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[3]), c3);
    for (int block = 0; block < 8; ++block) {
      vals[4 * block + 0] = words[0][block];
      vals[4 * block + 1] = words[1][block];
      vals[4 * block + 2] = words[2][block];
      vals[4 * block + 3] = words[3][block];
    }
    pos = 0;
    next_block += 8;
  }

  uint32_t next() {
    if (pos == 32) refill();
    return vals[pos++];
  }
};

void avx2_sample_u32(uint32_t key0, uint32_t key1, uint64_t stream, uint32_t n,
                     uint32_t threshold, size_t count, uint32_t* out) {
  if (count > (size_t{1} << 33)) {
    // Keeps the 32-bit block counters of the vector path valid; a pool
    // this large never occurs (gamma <= n <= 2^32).
    kernels::scalar_sample_u32(key0, key1, stream, n, threshold, count, out);
    return;
  }
  PhiloxStage8 stage{key0, key1, stream};
  const __m256i n_v = _mm256_set1_epi32(static_cast<int>(n));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i threshold_b =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(threshold)), bias);
  size_t produced = 0;
  while (produced < count) {
    if (stage.pos + 8 <= 32 && produced + 8 <= count) {
      // loadu: a rejection leaves pos unaligned until the next refill.
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(stage.vals + stage.pos));
      __m256i hi, lo;
      mulhilo8(n_v, x, hi, lo);
      const __m256i reject = _mm256_cmpgt_epi32(
          threshold_b, _mm256_xor_si256(lo, bias));  // lo <u threshold
      if (_mm256_testz_si256(reject, reject)) {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + produced), hi);
        stage.pos += 8;
        produced += 8;
        continue;
      }
    }
    // Tail / rejection path: one draw via the sequential stepper (the
    // staged values are the stream, so ordering is preserved exactly).
    uint64_t m = static_cast<uint64_t>(stage.next()) * n;
    while (static_cast<uint32_t>(m) < threshold) {
      m = static_cast<uint64_t>(stage.next()) * n;
    }
    out[produced++] = static_cast<uint32_t>(m >> 32);
  }
}

// -- bit-packed pool words --------------------------------------------------

void avx2_or_words(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(a, b));
  }
  kernels::scalar_or_words(dst + w, src + w, words - w);
}

/// Per-byte popcount via the nibble LUT, horizontally summed with SAD.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
                                       3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3,
                                       2, 3, 3, 4);
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, nibble);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline uint64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

template <typename Combine>
inline uint64_t popcount_combined(const uint64_t* a, const uint64_t* b,
                                  size_t words, Combine&& combine,
                                  uint64_t (*scalar_tail)(const uint64_t*,
                                                          const uint64_t*, size_t)) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i zero = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb = b == nullptr
                           ? _mm256_setzero_si256()
                           : _mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(b + w));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(popcount_bytes(combine(va, vb)),
                                                zero));
  }
  uint64_t total = hsum_epi64(acc);
  total += scalar_tail(a + w, b == nullptr ? nullptr : b + w, words - w);
  return total;
}

uint64_t avx2_popcount_words(const uint64_t* a, size_t words) {
  return popcount_combined(
      a, nullptr, words, [](__m256i va, __m256i) { return va; },
      [](const uint64_t* ta, const uint64_t*, size_t tw) {
        return kernels::scalar_popcount_words(ta, tw);
      });
}

uint64_t avx2_andnot_popcount(const uint64_t* a, const uint64_t* mask,
                              size_t words) {
  return popcount_combined(
      a, mask, words,
      [](__m256i va, __m256i vm) { return _mm256_andnot_si256(vm, va); },
      kernels::scalar_andnot_popcount);
}

uint64_t avx2_and_popcount(const uint64_t* a, const uint64_t* b, size_t words) {
  return popcount_combined(
      a, b, words, [](__m256i va, __m256i vb) { return _mm256_and_si256(va, vb); },
      kernels::scalar_and_popcount);
}

// -- top-k scans ------------------------------------------------------------

size_t avx2_count_greater(const double* scores, size_t n, double pivot) {
  const __m256d pivot_v = _mm256_set1_pd(pivot);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(scores + i);
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(x, pivot_v, _CMP_GT_OQ));
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  count += kernels::scalar_count_greater(scores + i, n - i, pivot);
  return count;
}

void avx2_topk_fill(const double* scores, size_t n, double pivot, size_t ties,
                    uint32_t* out, size_t k) {
  const __m256d pivot_v = _mm256_set1_pd(pivot);
  size_t taken = 0;
  size_t ties_taken = 0;
  size_t i = 0;
  for (; i + 4 <= n && taken < k; i += 4) {
    const __m256d x = _mm256_loadu_pd(scores + i);
    const int gt = _mm256_movemask_pd(_mm256_cmp_pd(x, pivot_v, _CMP_GT_OQ));
    const int eq = _mm256_movemask_pd(_mm256_cmp_pd(x, pivot_v, _CMP_EQ_OQ));
    if ((gt | eq) == 0) continue;  // the common skip: k << n
    for (size_t j = 0; j < 4 && taken < k; ++j) {
      if ((gt >> j) & 1) {
        out[taken++] = static_cast<uint32_t>(i + j);
      } else if (((eq >> j) & 1) != 0 && ties_taken < ties) {
        out[taken++] = static_cast<uint32_t>(i + j);
        ++ties_taken;
      }
    }
  }
  // Scalar tail continues with the shared accept logic.
  for (; i < n && taken < k; ++i) {
    const double s = scores[i];
    if (s > pivot) {
      out[taken++] = static_cast<uint32_t>(i);
    } else if (s == pivot && ties_taken < ties) {
      out[taken++] = static_cast<uint32_t>(i);
      ++ties_taken;
    }
  }
}

}  // namespace

const KernelSet* avx2_kernels_impl() {
  static const KernelSet set = {
      KernelIsa::Avx2,
      avx2_score_centered,
      avx2_score_raw,
      avx2_score_normalized,
      avx2_score_multiedge,
      kernels::scalar_accumulate_query,           // scatter-bound: shared scalar
      kernels::scalar_accumulate_query_distinct,  // scatter-bound: shared scalar
      avx2_sample_u32,
      avx2_or_words,
      avx2_popcount_words,
      avx2_andnot_popcount,
      avx2_and_popcount,
      avx2_count_greater,
      avx2_topk_fill,
  };
  return &set;
}

}  // namespace pooled

#else  // !(x86-64 with AVX2+POPCNT flags)

namespace pooled {
const KernelSet* avx2_kernels_impl() { return nullptr; }
}  // namespace pooled

#endif
