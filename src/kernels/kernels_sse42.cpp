// SSE4.2 KernelSet: 2-wide double scores, 128-bit word ops, hardware
// popcount. Compiled with -msse4.2 -mpopcnt (per-file flags); executed
// only after runtime dispatch confirms support. Sampling and the
// scatter-bound accumulators share the scalar bodies.
#include "kernels/kernel_set.hpp"

#if defined(__x86_64__) && defined(__SSE4_2__) && defined(__POPCNT__)

#include <nmmintrin.h>

#include "kernels/kernels_common.hpp"

namespace pooled {

namespace {

using std::size_t;
using std::uint32_t;
using std::uint64_t;

/// Exact u64 -> f64, 2-wide (same split-high/low construction as the
/// AVX2 variant; see kernels_avx2.cpp).
inline __m128d u64_to_f64(__m128i v) {
  const __m128d exp84 = _mm_set1_pd(19342813113834066795298816.0);  // 2^84
  const __m128d exp52 = _mm_set1_pd(4503599627370496.0);            // 2^52
  const __m128d exp84_52 = _mm_set1_pd(19342813118337666422669312.0);
  __m128i hi = _mm_srli_epi64(v, 32);
  hi = _mm_or_si128(hi, _mm_castpd_si128(exp84));
  __m128i lo = _mm_blend_epi16(v, _mm_castpd_si128(exp52), 0b11001100);
  const __m128d f = _mm_sub_pd(_mm_castsi128_pd(hi), exp84_52);
  return _mm_add_pd(f, _mm_castsi128_pd(lo));
}

/// Exact u32 -> f64 for two values.
inline __m128d u32x2_to_f64(uint32_t a, uint32_t b) {
  const __m128d exp52 = _mm_set1_pd(4503599627370496.0);  // 2^52
  __m128i wide = _mm_set_epi64x(static_cast<long long>(b), static_cast<long long>(a));
  wide = _mm_or_si128(wide, _mm_castpd_si128(exp52));
  return _mm_sub_pd(_mm_castsi128_pd(wide), exp52);
}

void sse42_score_centered(const uint64_t* psi, const uint32_t* delta_star,
                          size_t lo, size_t hi, double center, double* out) {
  const __m128d center_v = _mm_set1_pd(center);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const __m128d p =
        u64_to_f64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(psi + i)));
    const __m128d d = u32x2_to_f64(delta_star[i], delta_star[i + 1]);
    _mm_storeu_pd(out + i, _mm_sub_pd(p, _mm_mul_pd(d, center_v)));
  }
  kernels::scalar_score_centered(psi, delta_star, i, hi, center, out);
}

void sse42_score_raw(const uint64_t* psi, size_t lo, size_t hi, double* out) {
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    _mm_storeu_pd(out + i, u64_to_f64(_mm_loadu_si128(
                               reinterpret_cast<const __m128i*>(psi + i))));
  }
  kernels::scalar_score_raw(psi, i, hi, out);
}

void sse42_score_normalized(const uint64_t* psi, const uint32_t* delta_star,
                            size_t lo, size_t hi, double* out) {
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d zero = _mm_setzero_pd();
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const __m128d p =
        u64_to_f64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(psi + i)));
    const __m128d d = u32x2_to_f64(delta_star[i], delta_star[i + 1]);
    const __m128d is_zero = _mm_cmpeq_pd(d, zero);
    const __m128d safe = _mm_blendv_pd(d, one, is_zero);
    _mm_storeu_pd(out + i, _mm_andnot_pd(is_zero, _mm_div_pd(p, safe)));
  }
  kernels::scalar_score_normalized(psi, delta_star, i, hi, out);
}

void sse42_score_multiedge(const uint64_t* psi_multi, const uint64_t* delta,
                           size_t lo, size_t hi, double center, double* out) {
  const __m128d center_v = _mm_set1_pd(center);
  size_t i = lo;
  for (; i + 2 <= hi; i += 2) {
    const __m128d p = u64_to_f64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(psi_multi + i)));
    const __m128d d =
        u64_to_f64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(delta + i)));
    _mm_storeu_pd(out + i, _mm_sub_pd(p, _mm_mul_pd(d, center_v)));
  }
  kernels::scalar_score_multiedge(psi_multi, delta, i, hi, center, out);
}

void sse42_or_words(uint64_t* dst, const uint64_t* src, size_t words) {
  size_t w = 0;
  for (; w + 2 <= words; w += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + w));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + w), _mm_or_si128(a, b));
  }
  kernels::scalar_or_words(dst + w, src + w, words - w);
}

// With -mpopcnt the shared scalar bodies compile to one popcntq per word,
// which already saturates the load ports at 128-bit widths.

size_t sse42_count_greater(const double* scores, size_t n, double pivot) {
  const __m128d pivot_v = _mm_set1_pd(pivot);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d x = _mm_loadu_pd(scores + i);
    const int mask = _mm_movemask_pd(_mm_cmpgt_pd(x, pivot_v));
    count += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  count += kernels::scalar_count_greater(scores + i, n - i, pivot);
  return count;
}

void sse42_topk_fill(const double* scores, size_t n, double pivot, size_t ties,
                     uint32_t* out, size_t k) {
  const __m128d pivot_v = _mm_set1_pd(pivot);
  size_t taken = 0;
  size_t ties_taken = 0;
  size_t i = 0;
  for (; i + 2 <= n && taken < k; i += 2) {
    const __m128d x = _mm_loadu_pd(scores + i);
    const int gt = _mm_movemask_pd(_mm_cmpgt_pd(x, pivot_v));
    const int eq = _mm_movemask_pd(_mm_cmpeq_pd(x, pivot_v));
    if ((gt | eq) == 0) continue;
    for (size_t j = 0; j < 2 && taken < k; ++j) {
      if ((gt >> j) & 1) {
        out[taken++] = static_cast<uint32_t>(i + j);
      } else if (((eq >> j) & 1) != 0 && ties_taken < ties) {
        out[taken++] = static_cast<uint32_t>(i + j);
        ++ties_taken;
      }
    }
  }
  for (; i < n && taken < k; ++i) {
    const double s = scores[i];
    if (s > pivot) {
      out[taken++] = static_cast<uint32_t>(i);
    } else if (s == pivot && ties_taken < ties) {
      out[taken++] = static_cast<uint32_t>(i);
      ++ties_taken;
    }
  }
}

}  // namespace

const KernelSet* sse42_kernels_impl() {
  static const KernelSet set = {
      KernelIsa::Sse42,
      sse42_score_centered,
      sse42_score_raw,
      sse42_score_normalized,
      sse42_score_multiedge,
      kernels::scalar_accumulate_query,
      kernels::scalar_accumulate_query_distinct,
      kernels::scalar_sample_u32,
      sse42_or_words,
      kernels::scalar_popcount_words,    // popcntq via -mpopcnt
      kernels::scalar_andnot_popcount,   // popcntq via -mpopcnt
      kernels::scalar_and_popcount,      // popcntq via -mpopcnt
      sse42_count_greater,
      sse42_topk_fill,
  };
  return &set;
}

}  // namespace pooled

#else  // !(x86-64 with SSE4.2+POPCNT flags)

namespace pooled {
const KernelSet* sse42_kernels_impl() { return nullptr; }
}  // namespace pooled

#endif
