// Per-thread decode scratch: aligned buffers that grow once and are
// reused for every subsequent decode, replacing the per-call / per-chunk
// std::vector allocations in the hot paths (entry statistics, scoring,
// top-k selection, consistency scans).
//
// Thread-affinity contract
// ------------------------
// `DecodeArena::local()` returns the calling OS thread's arena. ThreadPool
// workers are long-lived, so after the first decode at a given problem
// size every buffer is warm and the steady state allocates nothing. Two
// rules keep this safe:
//
//  1. A slot is scratch for ONE live use at a time: acquire it, use it,
//     and stop referencing it before anything on the same thread can
//     acquire the same slot again (in particular, never hold a slot
//     across a nested parallel_for that might use it inline).
//  2. Lane-partial blocks (entry statistics) are allocated by the
//     *calling* thread but written by pool workers, indexed by
//     `ThreadPool::current_lane()`. The caller's run_tasks barrier is
//     what makes that hand-off safe; the slot map tolerates foreign lane
//     ids (a worker of a wider pool driving a narrower one inline).
//
// Memory is bounded by the largest decode a thread has run:
// ~32 bytes/entry/lane for the statistics block plus the score/top-k
// vectors. POOLED_ARENA_BUDGET_MB (default 1024) caps the lane-partial
// block; callers fall back to their shared-atomics path beyond it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.hpp"

namespace pooled {

/// Process-wide arena accounting: bytes currently held by decode-arena
/// buffers across every thread, plus the high-water mark. The arenas are
/// thread-local and effectively grow-only, so `live_bytes` is the steady
/// working-set cost of the pool and `peak_bytes` answers "how big did
/// the largest decode get" for the observability snapshot.
struct ArenaStats {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
};
[[nodiscard]] ArenaStats arena_stats();

/// Accounting hooks used by the arena's buffers (relaxed atomics; a
/// free of 0 bytes is a no-op).
void arena_account_alloc(std::size_t bytes);
void arena_account_free(std::size_t bytes);

/// One lane's view of the entry-statistics partial accumulators.
struct LaneStats {
  std::uint64_t* psi = nullptr;
  std::uint64_t* psi_multi = nullptr;
  std::uint64_t* delta = nullptr;
  std::uint32_t* delta_star = nullptr;
  std::uint32_t* mark = nullptr;  ///< zeroed at acquire; epochs must be nonzero
};

/// Lane-indexed partial accumulators for one entry-statistics pass.
/// Slots are claimed lock-free on first acquire and zeroed exactly once
/// per pass, so a pass that only ever runs on one lane (the batch-engine
/// case: nested parallelism executes inline) pays for one lane's memset,
/// not pool.size() of them.
class LanePartials {
 public:
  ~LanePartials();

  /// The lane's block, zeroed on this pass's first acquire. `lane_id` is
  /// ThreadPool::current_lane() of the executing thread; ids need not be
  /// dense or bounded by the slot count -- only the number of *distinct*
  /// concurrent ids is (<= pool.size(), guaranteed by run_tasks).
  [[nodiscard]] LaneStats acquire(unsigned lane_id);

  [[nodiscard]] unsigned slots() const { return slot_count_; }
  [[nodiscard]] std::size_t entries() const { return entries_; }

  /// Slot `slot`'s block if it was claimed during this pass, else a view
  /// of nulls. Merge loops iterate slots, not lane ids.
  [[nodiscard]] LaneStats claimed(unsigned slot) const;

 private:
  friend class DecodeArena;
  void reset(unsigned slots, std::size_t entries);
  [[nodiscard]] LaneStats slot_view(unsigned slot) const;

  std::unique_ptr<std::byte[]> block_;
  std::size_t block_bytes_ = 0;
  std::size_t entries_ = 0;
  std::size_t lane_stride_ = 0;  // bytes per lane, 64-byte multiple
  unsigned slot_count_ = 0;
  unsigned owner_capacity_ = 0;
  // slot -> lane id + 1 (0 = free); atomics because pool workers race to
  // claim slots within one pass.
  std::unique_ptr<std::atomic<std::uint64_t>[]> owners_;
};

class DecodeArena {
 public:
  /// The calling thread's arena.
  static DecodeArena& local();

  /// True when a lane-partial block of `lanes` x `entries` fits the
  /// POOLED_ARENA_BUDGET_MB budget (default 1024).
  static bool lane_budget_ok(unsigned lanes, std::size_t entries);

  // -- named scratch slots (see the affinity contract above) -------------
  double* scores(std::size_t n) { return scores_.ensure(n); }
  double* topk_values(std::size_t n) { return topk_values_.ensure(n); }
  std::uint32_t* order(std::size_t n) { return order_.ensure(n); }
  std::uint64_t* words_a(std::size_t n) { return words_a_.ensure(n); }
  std::uint64_t* words_b(std::size_t n) { return words_b_.ensure(n); }
  std::vector<std::uint32_t>& members() { return members_; }
  EntryStats& stats() { return stats_; }

  /// Lane-partial block for one entry-statistics pass (resets the slot
  /// map; the returned reference is valid until the next call on this
  /// thread).
  LanePartials& lane_partials(unsigned lanes, std::size_t entries);

 private:
  template <typename T>
  class Buffer {
   public:
    ~Buffer() { arena_account_free(bytes_); }

    T* ensure(std::size_t count) {
      if (count > capacity_) {
        const std::size_t need = count * sizeof(T) + 63;
        data_ = std::make_unique<std::byte[]>(need);
        arena_account_free(bytes_);
        arena_account_alloc(need);
        bytes_ = need;
        capacity_ = count;
        void* raw = data_.get();
        aligned_ = reinterpret_cast<T*>(
            (reinterpret_cast<std::uintptr_t>(raw) + 63) & ~std::uintptr_t{63});
      }
      return aligned_;
    }

   private:
    std::unique_ptr<std::byte[]> data_;
    T* aligned_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t bytes_ = 0;
  };

  Buffer<double> scores_;
  Buffer<double> topk_values_;
  Buffer<std::uint32_t> order_;
  Buffer<std::uint64_t> words_a_;
  Buffer<std::uint64_t> words_b_;
  std::vector<std::uint32_t> members_;
  EntryStats stats_;
  LanePartials partials_;
};

}  // namespace pooled
