#include "kernels/kernel_set.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>

#include "support/env.hpp"

namespace pooled {

// One registration hook per variant TU; returns nullptr when the build
// target cannot emit that ISA (the TU still compiles, as a stub).
const KernelSet* scalar_kernels_impl();
const KernelSet* sse42_kernels_impl();
const KernelSet* avx2_kernels_impl();
const KernelSet* neon_kernels_impl();

namespace {

/// True when the *running CPU* can execute the variant (the build already
/// proved the compiler could emit it, or the impl hook returned null).
bool cpu_supports(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar:
      return true;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case KernelIsa::Sse42:
      return __builtin_cpu_supports("sse4.2") && __builtin_cpu_supports("popcnt");
    case KernelIsa::Avx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
#endif
#if defined(__aarch64__)
    case KernelIsa::Neon:
      return true;  // NEON is architecturally mandatory on aarch64
#endif
    default:
      return false;
  }
}

const KernelSet* runnable(KernelIsa isa) {
  const KernelSet* set = nullptr;
  switch (isa) {
    case KernelIsa::Scalar:
      set = scalar_kernels_impl();
      break;
    case KernelIsa::Sse42:
      set = sse42_kernels_impl();
      break;
    case KernelIsa::Avx2:
      set = avx2_kernels_impl();
      break;
    case KernelIsa::Neon:
      set = neon_kernels_impl();
      break;
  }
  return (set != nullptr && cpu_supports(isa)) ? set : nullptr;
}

const KernelSet* best_available() {
  for (KernelIsa isa : {KernelIsa::Avx2, KernelIsa::Sse42, KernelIsa::Neon}) {
    if (const KernelSet* set = runnable(isa)) return set;
  }
  return scalar_kernels_impl();
}

const KernelSet* dispatch() {
  if (const auto name = env_string("POOLED_KERNELS")) {
    if (*name == "auto") return best_available();
    for (KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse42, KernelIsa::Avx2,
                          KernelIsa::Neon}) {
      if (*name == kernel_isa_name(isa)) {
        if (const KernelSet* set = runnable(isa)) return set;
        std::fprintf(stderr,
                     "pooled: POOLED_KERNELS=%s not runnable on this host, "
                     "using auto dispatch\n",
                     name->c_str());
        return best_available();
      }
    }
    std::fprintf(stderr,
                 "pooled: unknown POOLED_KERNELS=%s "
                 "(expected scalar|sse42|avx2|neon|auto), using auto dispatch\n",
                 name->c_str());
  }
  return best_available();
}

std::atomic<const KernelSet*>& active_slot() {
  static std::atomic<const KernelSet*> slot{dispatch()};
  return slot;
}

}  // namespace

const char* kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::Scalar:
      return "scalar";
    case KernelIsa::Sse42:
      return "sse42";
    case KernelIsa::Avx2:
      return "avx2";
    case KernelIsa::Neon:
      return "neon";
  }
  return "?";
}

const KernelSet& active_kernels() {
  return *active_slot().load(std::memory_order_acquire);
}

const KernelSet* kernels_for(KernelIsa isa) { return runnable(isa); }

std::vector<KernelIsa> available_kernel_isas() {
  std::vector<KernelIsa> isas;
  for (KernelIsa isa : {KernelIsa::Scalar, KernelIsa::Sse42, KernelIsa::Avx2,
                        KernelIsa::Neon}) {
    if (runnable(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

const KernelSet& set_active_kernels(const KernelSet& set) {
  return *active_slot().exchange(&set, std::memory_order_acq_rel);
}

void select_top_k_into(const KernelSet& kernels, const double* scores,
                       std::size_t n, std::uint32_t k, double* values_scratch,
                       std::uint32_t* out) {
  if (k == 0) return;
  std::memcpy(values_scratch, scores, n * sizeof(double));
  // Branch-light partial ranking: nth_element over plain doubles (no
  // index indirection, cmov-friendly comparator) pins the k-th largest
  // score; one vector scan then fills the k winners in ascending index
  // order, which is exactly the (score desc, index asc) total order's
  // top-k with its lower-index tie-break.
  std::nth_element(values_scratch, values_scratch + (k - 1), values_scratch + n,
                   std::greater<double>());
  const double pivot = values_scratch[k - 1];
  const std::size_t greater = kernels.count_greater(scores, n, pivot);
  // `greater` < k by definition of the k-th largest; the remainder are
  // filled by the lowest-index entries tying the pivot.
  kernels.topk_fill(scores, n, pivot, k - greater, out, k);
}

}  // namespace pooled
