#include "kernels/decode_arena.hpp"

#include <cstring>

#include "support/assert.hpp"
#include "support/env.hpp"

namespace pooled {

namespace {

constexpr std::size_t kAlign = 64;

constexpr std::size_t round_up(std::size_t bytes) {
  return (bytes + (kAlign - 1)) & ~(kAlign - 1);
}

/// Bytes per lane of a partial block over `entries` entries.
constexpr std::size_t lane_stride_bytes(std::size_t entries) {
  return round_up(entries * sizeof(std::uint64_t)) * 3 +   // psi, psi_multi, delta
         round_up(entries * sizeof(std::uint32_t)) * 2;    // delta_star, mark
}

std::atomic<std::uint64_t> g_arena_live{0};
std::atomic<std::uint64_t> g_arena_peak{0};

}  // namespace

void arena_account_alloc(std::size_t bytes) {
  const std::uint64_t live =
      g_arena_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_arena_peak.load(std::memory_order_relaxed);
  while (live > peak && !g_arena_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

void arena_account_free(std::size_t bytes) {
  if (bytes > 0) g_arena_live.fetch_sub(bytes, std::memory_order_relaxed);
}

ArenaStats arena_stats() {
  ArenaStats stats;
  stats.live_bytes = g_arena_live.load(std::memory_order_relaxed);
  stats.peak_bytes = g_arena_peak.load(std::memory_order_relaxed);
  return stats;
}

LanePartials::~LanePartials() { arena_account_free(block_bytes_); }

void LanePartials::reset(unsigned slots, std::size_t entries) {
  const std::size_t stride = lane_stride_bytes(entries);
  const std::size_t need = stride * slots + kAlign;
  if (need > block_bytes_) {
    block_ = std::make_unique<std::byte[]>(need);
    arena_account_free(block_bytes_);
    arena_account_alloc(need);
    block_bytes_ = need;
  }
  if (slots > owner_capacity_) {
    owners_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    owner_capacity_ = slots;
  }
  for (unsigned s = 0; s < slots; ++s) {
    owners_[s].store(0, std::memory_order_relaxed);
  }
  entries_ = entries;
  lane_stride_ = stride;
  slot_count_ = slots;
}

LaneStats LanePartials::slot_view(unsigned slot) const {
  auto base = reinterpret_cast<std::uintptr_t>(block_.get());
  base = (base + (kAlign - 1)) & ~std::uintptr_t{kAlign - 1};
  base += lane_stride_ * slot;
  const std::size_t u64s = round_up(entries_ * sizeof(std::uint64_t));
  const std::size_t u32s = round_up(entries_ * sizeof(std::uint32_t));
  LaneStats view;
  view.psi = reinterpret_cast<std::uint64_t*>(base);
  view.psi_multi = reinterpret_cast<std::uint64_t*>(base + u64s);
  view.delta = reinterpret_cast<std::uint64_t*>(base + 2 * u64s);
  view.delta_star = reinterpret_cast<std::uint32_t*>(base + 3 * u64s);
  view.mark = reinterpret_cast<std::uint32_t*>(base + 3 * u64s + u32s);
  return view;
}

LaneStats LanePartials::acquire(unsigned lane_id) {
  const std::uint64_t token = static_cast<std::uint64_t>(lane_id) + 1;
  for (unsigned s = 0; s < slot_count_; ++s) {
    std::uint64_t seen = owners_[s].load(std::memory_order_acquire);
    if (seen == token) return slot_view(s);
    if (seen == 0 && owners_[s].compare_exchange_strong(
                         seen, token, std::memory_order_acq_rel)) {
      const LaneStats view = slot_view(s);
      std::memset(view.psi, 0, lane_stride_);  // whole lane block at once
      return view;
    }
    // Claimed by another lane (before or during our CAS); keep scanning.
  }
  POOLED_REQUIRE(false, "more concurrent lanes than partial slots");
  return LaneStats{};
}

LaneStats LanePartials::claimed(unsigned slot) const {
  if (slot >= slot_count_ ||
      owners_[slot].load(std::memory_order_acquire) == 0) {
    return LaneStats{};
  }
  return slot_view(slot);
}

DecodeArena& DecodeArena::local() {
  thread_local DecodeArena arena;
  return arena;
}

bool DecodeArena::lane_budget_ok(unsigned lanes, std::size_t entries) {
  static const std::size_t budget = static_cast<std::size_t>(
      env_i64("POOLED_ARENA_BUDGET_MB", 1024)) << 20;
  return lane_stride_bytes(entries) * lanes <= budget;
}

LanePartials& DecodeArena::lane_partials(unsigned lanes, std::size_t entries) {
  partials_.reset(lanes, entries);
  return partials_;
}

}  // namespace pooled
