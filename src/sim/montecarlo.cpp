#include "sim/montecarlo.hpp"

#include "core/metrics.hpp"
#include "core/noise.hpp"
#include "engine/batch_engine.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/splitmix64.hpp"
#include "support/assert.hpp"

namespace pooled {

TrialSeeds trial_seeds(std::uint64_t seed_base, std::uint64_t trial_index) {
  // Two decorrelated streams per trial via SplitMix mixing.
  const std::uint64_t root = splitmix64_mix(seed_base ^ (trial_index * 0x9E3779B97F4A7C15ull));
  return TrialSeeds{splitmix64_mix(root ^ 0xDE516Eull), splitmix64_mix(root ^ 0x516A1ull)};
}

namespace {

/// The noise model a trial actually applies: the config's model with a
/// per-trial seed. The 0x4015E domain-separation constant keeps the
/// Philox key disjoint from the design's query streams (which are keyed
/// on the raw design seed), even for the default model seed of 0.
NoiseModel trial_noise_model(const TrialConfig& config, const TrialSeeds& seeds) {
  NoiseModel noise = config.noise;
  noise.seed ^= seeds.design_seed ^ 0x4015Eull;
  return noise;
}

}  // namespace

std::unique_ptr<Instance> build_trial_instance(const TrialConfig& config,
                                               std::uint64_t trial_index,
                                               Signal& truth_out, ThreadPool& pool) {
  const TrialSeeds seeds = trial_seeds(config.seed_base, trial_index);
  DesignParams params;
  params.n = config.n;
  params.seed = seeds.design_seed;
  params.gamma = config.gamma;
  params.p = config.p;
  std::shared_ptr<const PoolingDesign> design = make_design(config.design, params);
  truth_out = Signal::random(config.n, config.k, seeds.signal_seed);
  auto y = simulate_queries(*design, config.m, truth_out, pool);
  if (config.noise.enabled()) {
    apply_noise(y, trial_noise_model(config, seeds));
  }
  if (config.streamed) {
    return std::make_unique<StreamedInstance>(std::move(design), config.m,
                                              std::move(y));
  }
  // Stored backend: materialize the graph for the same queries.
  auto stored_graph = materialize_graph(
      StreamedInstance(design, config.m, std::vector<std::uint32_t>(config.m, 0)));
  return std::make_unique<StoredInstance>(std::move(stored_graph), std::move(y));
}

TrialResult run_trial(const TrialConfig& config, const Decoder& decoder,
                      std::uint64_t trial_index, ThreadPool& pool) {
  POOLED_REQUIRE(config.k <= config.n, "trial config: k exceeds n");
  Signal truth(1);
  const auto instance = build_trial_instance(config, trial_index, truth, pool);
  DecodeContext context(config.k, pool);
  // Record the per-trial model the builder actually applied.
  if (config.noise.enabled()) {
    context.noise =
        trial_noise_model(config, trial_seeds(config.seed_base, trial_index));
  }
  const DecodeOutcome outcome = decoder.decode(*instance, context);
  return TrialResult{exact_recovery(outcome.estimate, truth),
                     overlap_fraction(outcome.estimate, truth)};
}

AggregateResult run_trials(const TrialConfig& config, const Decoder& decoder,
                           std::uint32_t trials, ThreadPool& pool) {
  POOLED_REQUIRE(config.k <= config.n, "trial config: k exceeds n");
  // Trials are decode jobs: the engine schedules them over the pool and
  // reports in submission order, so the overlap aggregation is
  // order-deterministic (independent of thread count and window).
  std::vector<DecodeJob> jobs(trials);
  for (std::uint32_t t = 0; t < trials; ++t) {
    DecodeJob& job = jobs[t];
    job.k = config.k;
    job.decoder_override = &decoder;
    job.check_consistency = false;  // trials score against the known truth
    job.build = [&config, t](ThreadPool& worker_pool) {
      Signal truth(1);
      InstanceBundle bundle;
      bundle.instance = build_trial_instance(config, t, truth, worker_pool);
      bundle.truth_support.emplace(truth.support().begin(),
                                   truth.support().end());
      return bundle;
    };
  }
  EngineOptions options;
  options.capture_errors = false;  // a broken config should fail loudly
  const auto reports = BatchEngine(pool, options).run(jobs);

  AggregateResult aggregate;
  aggregate.trials = trials;
  for (const DecodeReport& report : reports) {
    if (report.exact) ++aggregate.successes;
    aggregate.overlap.add(report.overlap);
  }
  return aggregate;
}

}  // namespace pooled
