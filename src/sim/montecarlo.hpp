// Monte-Carlo trial runner for decoder evaluation.
//
// Trials run in parallel across the pool; each trial draws its own
// (design, signal) pair from seeds derived deterministically from
// (seed_base, trial index), so results are independent of thread count.
#pragma once

#include <cstdint>
#include <memory>

#include "core/decoder.hpp"
#include "design/design.hpp"
#include "stats/intervals.hpp"
#include "stats/summary.hpp"

namespace pooled {

struct TrialConfig {
  std::uint32_t n = 1000;
  std::uint32_t k = 8;
  std::uint32_t m = 100;
  DesignKind design = DesignKind::RandomRegular;
  std::uint64_t gamma = 0;      ///< 0 = paper's n/2 (RandomRegular/Distinct)
  double p = 0.5;               ///< Bernoulli inclusion probability
  std::uint64_t seed_base = 1;
  bool streamed = true;         ///< streamed vs. stored instance backend
  /// First-class channel noise applied to each trial's results (the
  /// model's seed is decorrelated per trial via the trial's design seed).
  NoiseModel noise;
};

struct TrialResult {
  bool exact = false;
  double overlap = 0.0;
};

struct AggregateResult {
  std::uint32_t trials = 0;
  std::uint32_t successes = 0;
  RunningStats overlap;
  [[nodiscard]] double success_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) / static_cast<double>(trials);
  }
  [[nodiscard]] Interval success_ci() const {
    return wilson_interval(successes, trials == 0 ? 1 : trials);
  }
};

/// Design + signal seeds of one trial (exposed for reproducibility tests).
struct TrialSeeds {
  std::uint64_t design_seed;
  std::uint64_t signal_seed;
};
TrialSeeds trial_seeds(std::uint64_t seed_base, std::uint64_t trial_index);

/// Runs one teacher-student trial.
TrialResult run_trial(const TrialConfig& config, const Decoder& decoder,
                      std::uint64_t trial_index, ThreadPool& pool);

/// Runs `trials` independent trials in parallel and aggregates.
AggregateResult run_trials(const TrialConfig& config, const Decoder& decoder,
                           std::uint32_t trials, ThreadPool& pool);

/// Builds the instance of one trial (shared by benches that need the raw
/// observables, e.g. the exhaustive Z_k counter).
std::unique_ptr<Instance> build_trial_instance(const TrialConfig& config,
                                               std::uint64_t trial_index,
                                               Signal& truth_out, ThreadPool& pool);

}  // namespace pooled
