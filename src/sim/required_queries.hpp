// Fig. 2 protocol: per simulation run, the minimal m after which the MN
// algorithm reconstructs sigma exactly.
#pragma once

#include <cstdint>

#include "stats/summary.hpp"

namespace pooled {

class ThreadPool;

struct RequiredQueriesConfig {
  std::uint32_t n = 1000;
  std::uint32_t k = 8;
  std::uint64_t seed_base = 1;
  /// Abort guard: give up past this many queries (0 = 50x the finite-size
  /// MN threshold).
  std::uint32_t m_cap = 0;
};

/// One run: queries are added one at a time (incremental MN) and the
/// first m with exact reconstruction is returned; 0 if the cap was hit.
std::uint32_t required_queries_one_run(const RequiredQueriesConfig& config,
                                       std::uint64_t trial_index);

/// Aggregates `trials` independent runs in parallel (cap-hitting runs are
/// recorded at the cap value, matching how the paper's plot saturates).
RunningStats required_queries(const RequiredQueriesConfig& config,
                              std::uint32_t trials, ThreadPool& pool);

}  // namespace pooled
