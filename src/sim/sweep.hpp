// Parameter sweeps producing the rows Figs. 3 and 4 plot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/montecarlo.hpp"

namespace pooled {

struct SweepPoint {
  std::uint32_t m = 0;
  double success_rate = 0.0;
  Interval success_ci{0.0, 0.0};
  double overlap_mean = 0.0;
  double overlap_stderr = 0.0;
};

/// Evaluates `decoder` at every m in `m_values` with `trials` runs each.
std::vector<SweepPoint> sweep_queries(TrialConfig config, const Decoder& decoder,
                                      const std::vector<std::uint32_t>& m_values,
                                      std::uint32_t trials, ThreadPool& pool);

/// Same, with the decoder resolved through the engine registry -- benches
/// name decoders by spec string instead of hand-rolling constructors.
std::vector<SweepPoint> sweep_queries(TrialConfig config,
                                      const std::string& decoder_spec,
                                      const std::vector<std::uint32_t>& m_values,
                                      std::uint32_t trials, ThreadPool& pool);

/// Evenly spaced integer grid [lo, hi] with `points` values.
std::vector<std::uint32_t> linear_grid(std::uint32_t lo, std::uint32_t hi,
                                       std::uint32_t points);

/// Log-spaced integer grid (deduplicated, ascending).
std::vector<std::uint32_t> log_grid(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points);

/// Smallest m in the sweep whose success rate reaches `target`; 0 if none.
std::uint32_t first_m_reaching(const std::vector<SweepPoint>& sweep, double target);

}  // namespace pooled
