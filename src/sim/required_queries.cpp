#include "sim/required_queries.hpp"

#include <algorithm>
#include <cmath>

#include "core/incremental.hpp"
#include "core/thresholds.hpp"
#include "design/random_regular.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/montecarlo.hpp"
#include "support/assert.hpp"
#include "support/thread_annotations.hpp"

namespace pooled {

std::uint32_t required_queries_one_run(const RequiredQueriesConfig& config,
                                       std::uint64_t trial_index) {
  POOLED_REQUIRE(config.k >= 1 && config.k <= config.n, "invalid (n, k)");
  const TrialSeeds seeds = trial_seeds(config.seed_base, trial_index);
  auto design = std::make_shared<RandomRegularDesign>(config.n, seeds.design_seed);
  Signal truth = Signal::random(config.n, config.k, seeds.signal_seed);
  std::uint32_t cap = config.m_cap;
  if (cap == 0) {
    const double guard = 50.0 * thresholds::m_mn_finite(config.n, std::max<std::uint32_t>(config.k, 2));
    cap = static_cast<std::uint32_t>(std::min<double>(guard, 1e9));
  }
  IncrementalMn mn(std::move(design), std::move(truth));
  while (mn.m() < cap) {
    mn.add_query();
    if (mn.matches_truth()) return mn.m();
  }
  return 0;
}

RunningStats required_queries(const RequiredQueriesConfig& config,
                              std::uint32_t trials, ThreadPool& pool) {
  RunningStats stats;
  AnnotatedMutex mu;
  pool.run_tasks(trials, [&](std::size_t t) {
    std::uint32_t required = required_queries_one_run(config, t);
    if (required == 0) required = config.m_cap;  // saturate, don't drop
    const LockGuard lock(mu);
    stats.add(static_cast<double>(required));
  });
  return stats;
}

}  // namespace pooled
