#include "sim/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "engine/registry.hpp"
#include "support/assert.hpp"

namespace pooled {

std::vector<SweepPoint> sweep_queries(TrialConfig config, const Decoder& decoder,
                                      const std::vector<std::uint32_t>& m_values,
                                      std::uint32_t trials, ThreadPool& pool) {
  std::vector<SweepPoint> points;
  points.reserve(m_values.size());
  for (std::uint32_t m : m_values) {
    config.m = m;
    const AggregateResult agg = run_trials(config, decoder, trials, pool);
    SweepPoint point;
    point.m = m;
    point.success_rate = agg.success_rate();
    point.success_ci = agg.success_ci();
    point.overlap_mean = agg.overlap.mean();
    point.overlap_stderr = agg.overlap.stderr_mean();
    points.push_back(point);
  }
  return points;
}

std::vector<SweepPoint> sweep_queries(TrialConfig config,
                                      const std::string& decoder_spec,
                                      const std::vector<std::uint32_t>& m_values,
                                      std::uint32_t trials, ThreadPool& pool) {
  const auto decoder = make_decoder(decoder_spec);
  return sweep_queries(config, *decoder, m_values, trials, pool);
}

std::vector<std::uint32_t> linear_grid(std::uint32_t lo, std::uint32_t hi,
                                       std::uint32_t points) {
  POOLED_REQUIRE(points >= 2 && hi > lo, "grid needs points >= 2 and hi > lo");
  std::vector<std::uint32_t> grid;
  grid.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    grid.push_back(lo + static_cast<std::uint32_t>(
                            std::llround(f * static_cast<double>(hi - lo))));
  }
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

std::vector<std::uint32_t> log_grid(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points) {
  POOLED_REQUIRE(points >= 2 && hi > lo && lo > 0,
                 "log grid needs points >= 2 and hi > lo > 0");
  std::vector<std::uint32_t> grid;
  grid.reserve(points);
  const double log_lo = std::log(static_cast<double>(lo));
  const double log_hi = std::log(static_cast<double>(hi));
  for (std::uint32_t i = 0; i < points; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(points - 1);
    grid.push_back(static_cast<std::uint32_t>(
        std::llround(std::exp(log_lo + f * (log_hi - log_lo)))));
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

std::uint32_t first_m_reaching(const std::vector<SweepPoint>& sweep, double target) {
  for (const SweepPoint& point : sweep) {
    if (point.success_rate >= target) return point.m;
  }
  return 0;
}

}  // namespace pooled
