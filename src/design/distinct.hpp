// Ablation design: Γ *distinct* entries per query (without replacement).
//
// The paper argues multi-edges do not hurt; this design lets the ablation
// bench quantify that claim empirically.
#pragma once

#include "design/design.hpp"

namespace pooled {

class DistinctDesign final : public PoolingDesign {
 public:
  DistinctDesign(std::uint32_t n, std::uint64_t seed, std::uint64_t gamma = 0);

  [[nodiscard]] std::uint32_t num_entries() const override { return n_; }
  void query_members(std::uint32_t query,
                     std::vector<std::uint32_t>& out) const override;
  [[nodiscard]] double expected_pool_size() const override {
    return static_cast<double>(gamma_);
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint64_t gamma() const { return gamma_; }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  std::uint64_t gamma_;
};

}  // namespace pooled
