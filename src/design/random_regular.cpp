#include "design/random_regular.hpp"

#include <sstream>

#include "rng/philox.hpp"
#include "rng/sampling.hpp"
#include "support/assert.hpp"

namespace pooled {

RandomRegularDesign::RandomRegularDesign(std::uint32_t n, std::uint64_t seed,
                                         std::uint64_t gamma)
    : n_(n), seed_(seed), gamma_(gamma == 0 ? std::max<std::uint64_t>(1, n / 2) : gamma) {
  POOLED_REQUIRE(n > 0, "design needs n > 0");
}

void RandomRegularDesign::query_members(std::uint32_t query,
                                        std::vector<std::uint32_t>& out) const {
  PhiloxStream stream(seed_, query);
  sample_with_replacement(stream, n_, static_cast<std::size_t>(gamma_), out);
}

std::string RandomRegularDesign::name() const {
  std::ostringstream os;
  os << "random-regular(gamma=" << gamma_ << ")";
  return os.str();
}

}  // namespace pooled
