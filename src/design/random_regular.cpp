#include "design/random_regular.hpp"

#include <sstream>

#include "kernels/kernel_set.hpp"
#include "rng/splitmix64.hpp"
#include "support/assert.hpp"

namespace pooled {

RandomRegularDesign::RandomRegularDesign(std::uint32_t n, std::uint64_t seed,
                                         std::uint64_t gamma)
    : n_(n), seed_(seed), gamma_(gamma == 0 ? std::max<std::uint64_t>(1, n / 2) : gamma) {
  POOLED_REQUIRE(n > 0, "design needs n > 0");
  const std::uint64_t mixed = splitmix64_mix(seed_);
  key0_ = static_cast<std::uint32_t>(mixed);
  key1_ = static_cast<std::uint32_t>(mixed >> 32);
  lemire_threshold_ = static_cast<std::uint32_t>((0x100000000ull - n_) % n_);
}

void RandomRegularDesign::query_members(std::uint32_t query,
                                        std::vector<std::uint32_t>& out) const {
  // The dispatched kernel reproduces PhiloxStream(seed, query) +
  // sample_with_replacement bit for bit (same 32-bit consumption order,
  // same Lemire rejection); the AVX2 variant generates eight Philox
  // blocks per step. The stream id mixing matches PhiloxStream's ctor.
  const std::uint64_t stream =
      splitmix64_mix(static_cast<std::uint64_t>(query) ^ 0xA5A5A5A5A5A5A5A5ull);
  out.resize(static_cast<std::size_t>(gamma_));
  active_kernels().sample_u32(key0_, key1_, stream, n_, lemire_threshold_,
                              out.size(), out.data());
}

std::string RandomRegularDesign::name() const {
  std::ostringstream os;
  os << "random-regular(gamma=" << gamma_ << ")";
  return os.str();
}

}  // namespace pooled
