// Pooling designs: how each query selects its pool of entries.
//
// A design is a *deterministic* function of (seed, query index): the same
// design object always regenerates the same pools. This is what lets the
// streamed instance backend re-derive any query without storing the graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pooled {

class PoolingDesign {
 public:
  virtual ~PoolingDesign() = default;

  /// Number of entry nodes (signal length n).
  [[nodiscard]] virtual std::uint32_t num_entries() const = 0;

  /// Writes the membership draws of query `query` into `out` (resized).
  /// Duplicates are allowed and meaningful: a duplicated entry contributes
  /// its value multiple times to the query result (multi-edge semantics).
  virtual void query_members(std::uint32_t query,
                             std::vector<std::uint32_t>& out) const = 0;

  /// Expected pool size (used for sizing and theory formulas).
  [[nodiscard]] virtual double expected_pool_size() const = 0;

  /// Human-readable identification for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if query_members can be called for any index without preparation
  /// (false for materialized designs bounded by a fixed m).
  [[nodiscard]] virtual bool unbounded() const { return true; }
};

/// Built-in design kinds (see the matching classes for semantics).
enum class DesignKind {
  RandomRegular,   ///< paper's design: Γ draws with replacement per query
  Distinct,        ///< Γ distinct entries per query (ablation)
  Bernoulli,       ///< each entry joins each query independently w.p. p
};

struct DesignParams {
  std::uint32_t n = 0;       ///< signal length
  std::uint64_t seed = 1;    ///< design randomness
  std::uint64_t gamma = 0;   ///< pool size; 0 means the paper's n/2
  double p = 0.5;            ///< Bernoulli inclusion probability
};

/// Factory for the streamable designs.
std::unique_ptr<PoolingDesign> make_design(DesignKind kind, const DesignParams& params);

}  // namespace pooled
