#include "design/distinct.hpp"

#include <sstream>

#include "rng/philox.hpp"
#include "rng/sampling.hpp"
#include "support/assert.hpp"

namespace pooled {

DistinctDesign::DistinctDesign(std::uint32_t n, std::uint64_t seed, std::uint64_t gamma)
    : n_(n), seed_(seed), gamma_(gamma == 0 ? std::max<std::uint64_t>(1, n / 2) : gamma) {
  POOLED_REQUIRE(n > 0, "design needs n > 0");
  POOLED_REQUIRE(gamma_ <= n, "distinct design cannot pool more than n entries");
}

void DistinctDesign::query_members(std::uint32_t query,
                                   std::vector<std::uint32_t>& out) const {
  PhiloxStream stream(seed_, query);
  out = sample_distinct(stream, n_, gamma_);
}

std::string DistinctDesign::name() const {
  std::ostringstream os;
  os << "distinct(gamma=" << gamma_ << ")";
  return os.str();
}

}  // namespace pooled
