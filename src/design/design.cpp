#include "design/design.hpp"

#include "design/bernoulli.hpp"
#include "design/distinct.hpp"
#include "design/random_regular.hpp"
#include "support/assert.hpp"

namespace pooled {

std::unique_ptr<PoolingDesign> make_design(DesignKind kind, const DesignParams& params) {
  switch (kind) {
    case DesignKind::RandomRegular:
      return std::make_unique<RandomRegularDesign>(params.n, params.seed, params.gamma);
    case DesignKind::Distinct:
      return std::make_unique<DistinctDesign>(params.n, params.seed, params.gamma);
    case DesignKind::Bernoulli:
      return std::make_unique<BernoulliDesign>(params.n, params.seed, params.p);
  }
  POOLED_REQUIRE(false, "unknown design kind");
  return nullptr;
}

}  // namespace pooled
