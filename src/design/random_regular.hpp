// The paper's pooling design: every query pools exactly Γ entries chosen
// uniformly at random *with replacement* (random regular multigraph model).
#pragma once

#include "design/design.hpp"

namespace pooled {

class RandomRegularDesign final : public PoolingDesign {
 public:
  /// gamma == 0 selects the paper's Γ = n/2 (rounded down, min 1).
  RandomRegularDesign(std::uint32_t n, std::uint64_t seed, std::uint64_t gamma = 0);

  [[nodiscard]] std::uint32_t num_entries() const override { return n_; }
  void query_members(std::uint32_t query,
                     std::vector<std::uint32_t>& out) const override;
  [[nodiscard]] double expected_pool_size() const override {
    return static_cast<double>(gamma_);
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint64_t gamma() const { return gamma_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  std::uint64_t gamma_;
  // Precomputed pieces of the keyed Philox draw, so query_members can
  // hand the whole pool generation to the dispatched sample_u32 kernel:
  // the splitmix64-mixed seed key and the Lemire rejection threshold
  // (2^32 - n) % n.
  std::uint32_t key0_;
  std::uint32_t key1_;
  std::uint32_t lemire_threshold_;
};

}  // namespace pooled
