// Column-regular design: every entry participates in exactly d queries
// (the biregular configuration-model design used by sparse-graph decoders
// such as Karimi et al.'s). Materialized: the whole edge permutation is
// drawn up front, so this design is bounded by its m.
#pragma once

#include <vector>

#include "design/design.hpp"

namespace pooled {

class ColumnRegularDesign final : public PoolingDesign {
 public:
  /// n entries, m queries, every entry in exactly `entry_degree` queries.
  /// Edges are dealt to queries as evenly as possible (configuration model).
  ColumnRegularDesign(std::uint32_t n, std::uint32_t m, std::uint32_t entry_degree,
                      std::uint64_t seed);

  [[nodiscard]] std::uint32_t num_entries() const override { return n_; }
  void query_members(std::uint32_t query,
                     std::vector<std::uint32_t>& out) const override;
  [[nodiscard]] double expected_pool_size() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool unbounded() const override { return false; }

  [[nodiscard]] std::uint32_t num_queries() const { return m_; }
  [[nodiscard]] std::uint32_t entry_degree() const { return degree_; }

 private:
  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t degree_;
  std::vector<std::size_t> offsets_;        // per-query slices into members_
  std::vector<std::uint32_t> members_;
};

}  // namespace pooled
