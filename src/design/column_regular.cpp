#include "design/column_regular.hpp"

#include <sstream>

#include "rng/philox.hpp"
#include "rng/sampling.hpp"
#include "support/assert.hpp"

namespace pooled {

ColumnRegularDesign::ColumnRegularDesign(std::uint32_t n, std::uint32_t m,
                                         std::uint32_t entry_degree,
                                         std::uint64_t seed)
    : n_(n), m_(m), degree_(entry_degree) {
  POOLED_REQUIRE(n > 0 && m > 0, "column-regular design needs n, m > 0");
  POOLED_REQUIRE(entry_degree > 0, "column-regular design needs degree > 0");
  // Configuration model: nd half-edges, shuffled, dealt round-robin into m
  // pools so pool sizes differ by at most one.
  members_.reserve(static_cast<std::size_t>(n) * entry_degree);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t d = 0; d < entry_degree; ++d) members_.push_back(i);
  }
  PhiloxStream stream(seed, 0xC01Dull);
  shuffle(stream, members_);
  const std::size_t edges = members_.size();
  offsets_.resize(m_ + 1);
  for (std::uint32_t q = 0; q <= m_; ++q) {
    offsets_[q] = edges * q / m_;
  }
}

void ColumnRegularDesign::query_members(std::uint32_t query,
                                        std::vector<std::uint32_t>& out) const {
  POOLED_REQUIRE(query < m_, "column-regular design is bounded by m");
  out.assign(members_.begin() + static_cast<std::ptrdiff_t>(offsets_[query]),
             members_.begin() + static_cast<std::ptrdiff_t>(offsets_[query + 1]));
}

double ColumnRegularDesign::expected_pool_size() const {
  return static_cast<double>(members_.size()) / static_cast<double>(m_);
}

std::string ColumnRegularDesign::name() const {
  std::ostringstream os;
  os << "column-regular(d=" << degree_ << ",m=" << m_ << ")";
  return os.str();
}

}  // namespace pooled
