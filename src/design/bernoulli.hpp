// Bernoulli pooling design: entry i joins query a independently with
// probability p. The classical i.i.d. design used throughout the group
// testing literature; included for design ablations.
#pragma once

#include "design/design.hpp"

namespace pooled {

class BernoulliDesign final : public PoolingDesign {
 public:
  BernoulliDesign(std::uint32_t n, std::uint64_t seed, double p);

  [[nodiscard]] std::uint32_t num_entries() const override { return n_; }
  void query_members(std::uint32_t query,
                     std::vector<std::uint32_t>& out) const override;
  [[nodiscard]] double expected_pool_size() const override {
    return p_ * static_cast<double>(n_);
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double p() const { return p_; }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  double p_;
};

}  // namespace pooled
