#include "design/bernoulli.hpp"

#include <cmath>
#include <sstream>

#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "support/assert.hpp"

namespace pooled {

BernoulliDesign::BernoulliDesign(std::uint32_t n, std::uint64_t seed, double p)
    : n_(n), seed_(seed), p_(p) {
  POOLED_REQUIRE(n > 0, "design needs n > 0");
  POOLED_REQUIRE(p > 0.0 && p < 1.0, "Bernoulli design needs p in (0,1)");
}

void BernoulliDesign::query_members(std::uint32_t query,
                                    std::vector<std::uint32_t>& out) const {
  out.clear();
  PhiloxStream stream(seed_, query);
  if (p_ <= 0.2) {
    // Geometric gap skipping: expected work O(p n) instead of O(n).
    const double log1mp = std::log1p(-p_);
    double position = -1.0;
    for (;;) {
      double u = uniform_real(stream);
      if (u >= 1.0) u = std::nextafter(1.0, 0.0);
      position += 1.0 + std::floor(std::log1p(-u) / log1mp);
      if (position >= static_cast<double>(n_)) break;
      out.push_back(static_cast<std::uint32_t>(position));
    }
  } else {
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (bernoulli(stream, p_)) out.push_back(i);
    }
  }
}

std::string BernoulliDesign::name() const {
  std::ostringstream os;
  os << "bernoulli(p=" << p_ << ")";
  return os.str();
}

}  // namespace pooled
