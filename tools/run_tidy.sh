#!/usr/bin/env bash
# Runs the clang-tidy gate (.clang-tidy) over the library and tools,
# driving off the compilation database CMake exports.
#
#   tools/run_tidy.sh [build-dir]    # default build dir: build
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: clang-tidy)
#
# Exits nonzero on any finding (WarningsAsErrors: '*' in .clang-tidy),
# which is what the CI tidy job enforces. Tests are deliberately out of
# scope: gtest's macros trip checks the production tree must stay clean
# of, and the gate is about the shipped library and CLI.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S . (the tree exports" >&2
  echo "CMAKE_EXPORT_COMPILE_COMMANDS unconditionally)." >&2
  exit 2
fi
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "error: ${TIDY} not found; install clang-tidy or set CLANG_TIDY." >&2
  exit 2
fi

# Library sources plus the CLI: every TU the static library ships.
mapfile -t FILES < <(find src tools -name '*.cpp' | sort)
echo "clang-tidy gate: ${#FILES[@]} files against ${BUILD_DIR}/compile_commands.json"

# xargs -P keeps all cores busy; any failing invocation fails the gate.
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet

echo "clang-tidy gate: clean"
