#!/usr/bin/env python3
"""Project-invariant lints the compiler cannot check.

Every rule here encodes a convention this codebase already agreed on
(see src/support/ and tools/tsan.supp); the linter just keeps them from
regressing silently:

  bare-mutex       std::mutex / recursive_mutex / shared_mutex in src/
                   outside support/thread_annotations.hpp. The threaded
                   core locks AnnotatedMutex through LockGuard so Clang's
                   -Wthread-safety can check the lock discipline; a bare
                   std::mutex is invisible to the analysis.
  raw-assert       assert( or <cassert> in src/. NDEBUG strips assert
                   from Release, which is what CI measures and ships;
                   POOLED_CHECK aborts everywhere, POOLED_DCHECK is the
                   debug-only spelling.
  libc-rand        rand( / srand( anywhere. Simulations must be
                   reproducible from recorded seeds; all randomness goes
                   through the seeded engines (SplitMix/xoshiro).
  kernel-alloc     heap allocation (new, malloc/calloc/realloc,
                   make_unique/make_shared, std::vector) inside the
                   src/kernels/kernels_*.cpp hot paths. Kernels run per
                   query inside the decode loop; buffers belong to the
                   caller (the arena or the engine), never the kernel.
  bare-nolint      a NOLINT marker with no justification. Suppressing
                   clang-tidy is fine, silently is not: the same line or
                   the line above must carry a comment with prose (not
                   just the marker).
  bare-suppression a non-comment entry in tools/tsan.supp without a
                   justifying comment on the line(s) directly above it.

A rule can be waived for one line with `// pooled-lint: allow(<rule>)`
plus a reason on the same line or the line above -- the waiver comment
itself must say why.

Usage: pooled_lint.py [--root <repo>]
       pooled_lint.py --self-test
"""
import argparse
import os
import re
import sys
import tempfile

MUTEX_RE = re.compile(r"\bstd::(recursive_mutex|shared_mutex|mutex)\b")
ASSERT_RE = re.compile(r"(^|[^_\w.])assert\s*\(|#\s*include\s*<cassert>")
RAND_RE = re.compile(r"(^|[^_\w.:])s?rand\s*\(")
ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # `new Foo` (placement new has `new (`)
    r"|\bnew\s*\("
    r"|(^|[^_\w])(malloc|calloc|realloc)\s*\("
    r"|\bmake_unique\b|\bmake_shared\b"
    r"|\bstd::vector\b")
NOLINT_RE = re.compile(r"NOLINT")
WAIVER_RE = re.compile(r"pooled-lint:\s*allow\(([a-z-]+)\)")

# A comment counts as a justification when it carries prose beyond the
# marker itself: at least one word of three-plus letters that is not the
# marker keyword.
def has_justification(comment: str) -> bool:
    text = NOLINT_RE.sub("", comment)
    text = re.sub(r"NOLINT(NEXTLINE|BEGIN|END)?(\([^)]*\))?", "", text)
    text = WAIVER_RE.sub("", text)
    return len(re.findall(r"[A-Za-z]{3,}", text)) >= 2


def comment_part(line: str) -> str:
    """The line's // comment, or '' (string literals with // are rare
    enough in this codebase that the simple split is right)."""
    index = line.find("//")
    return line[index:] if index >= 0 else ""


class Finding:
    def __init__(self, path, line_number, rule, message):
        self.path = path
        self.line_number = line_number
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_number}: [{self.rule}] {self.message}"


def waived(rule, line, previous_line):
    """True when this line (or the one above) waives `rule` with a
    pooled-lint: allow(...) comment, and either comment carries the
    reason (marker on the line, prose above, is the common spelling)."""
    comments = [comment_part(line), comment_part(previous_line)]
    marked = any(
        match and match.group(1) == rule
        for match in (WAIVER_RE.search(comment) for comment in comments))
    return marked and any(has_justification(c) for c in comments)


def lint_source_file(path, rel, lines):
    findings = []
    in_kernels = re.match(r"src/kernels/kernels_\w+\.cpp$", rel) is not None
    is_annotations = rel == "src/support/thread_annotations.hpp"
    in_src = rel.startswith("src/")
    previous = ""
    for number, line in enumerate(lines, start=1):
        code = line.split("//", 1)[0]
        comment = comment_part(line)

        if in_src and not is_annotations and MUTEX_RE.search(code):
            if not waived("bare-mutex", line, previous):
                findings.append(Finding(
                    rel, number, "bare-mutex",
                    "bare std::mutex is invisible to -Wthread-safety; "
                    "use AnnotatedMutex + LockGuard "
                    "(support/thread_annotations.hpp)"))

        if in_src and ASSERT_RE.search(code):
            if not waived("raw-assert", line, previous):
                findings.append(Finding(
                    rel, number, "raw-assert",
                    "assert() vanishes under NDEBUG (Release CI); use "
                    "POOLED_CHECK or POOLED_DCHECK (support/assert.hpp)"))

        if RAND_RE.search(code):
            if not waived("libc-rand", line, previous):
                findings.append(Finding(
                    rel, number, "libc-rand",
                    "rand()/srand() breaks seeded reproducibility; use "
                    "the seeded engines"))

        if in_kernels and ALLOC_RE.search(code):
            if not waived("kernel-alloc", line, previous):
                findings.append(Finding(
                    rel, number, "kernel-alloc",
                    "heap allocation in a kernel hot path; buffers belong "
                    "to the caller"))

        if NOLINT_RE.search(line):
            justified = (has_justification(comment)
                         or has_justification(comment_part(previous)))
            if not justified:
                findings.append(Finding(
                    rel, number, "bare-nolint",
                    "NOLINT without a justifying comment on this line or "
                    "the line above"))

        previous = line
    return findings


def lint_suppression_file(rel, lines):
    findings = []
    previous_was_comment = False
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            previous_was_comment = True
            continue
        if not previous_was_comment:
            findings.append(Finding(
                rel, number, "bare-suppression",
                "suppression entry without a justifying comment directly "
                "above it"))
        previous_was_comment = False
    return findings


def iter_source_files(root):
    for subdir in ("src", "fuzz", "tools"):
        top = os.path.join(root, subdir)
        if not os.path.isdir(top):
            continue
        for directory, _, names in os.walk(top):
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    yield os.path.join(directory, name)


def lint_tree(root):
    findings = []
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            findings.extend(lint_source_file(path, rel, f.read().splitlines()))
    supp = os.path.join(root, "tools", "tsan.supp")
    if os.path.isfile(supp):
        with open(supp, encoding="utf-8") as f:
            findings.extend(
                lint_suppression_file("tools/tsan.supp", f.read().splitlines()))
    return findings


def self_test() -> int:
    """Each rule must fire on a minimal bad fixture and stay quiet on the
    idiomatic spelling (including justified waivers)."""
    cases = [
        # (name, relative path, content, expected rules)
        ("bare mutex fires", "src/x.cpp",
         "std::mutex mu;\n", ["bare-mutex"]),
        ("recursive mutex fires", "src/x.cpp",
         "std::recursive_mutex mu;\n", ["bare-mutex"]),
        ("annotations header is exempt", "src/support/thread_annotations.hpp",
         "std::mutex inner_;\n", []),
        ("annotated mutex is quiet", "src/x.cpp",
         "AnnotatedMutex mu;\nconst LockGuard lock(mu);\n", []),
        ("waived mutex is quiet", "src/x.cpp",
         "// the analysis cannot follow this FFI handoff\n"
         "std::mutex mu;  // pooled-lint: allow(bare-mutex)\n", []),
        ("unjustified waiver still fires", "src/x.cpp",
         "int y;\nstd::mutex mu;  // pooled-lint: allow(bare-mutex)\n",
         ["bare-mutex"]),
        ("raw assert fires", "src/x.cpp",
         "assert(x > 0);\n", ["raw-assert"]),
        ("cassert include fires", "src/x.cpp",
         "#include <cassert>\n", ["raw-assert"]),
        ("static_assert is quiet", "src/x.cpp",
         "static_assert(sizeof(int) == 4);\n", []),
        ("POOLED_CHECK is quiet", "src/x.cpp",
         "POOLED_CHECK(x > 0, \"x\");\n", []),
        ("assert in tests is out of scope", "tools/x.cpp",
         "assert(x);\n", []),
        ("rand fires", "src/x.cpp",
         "int r = rand();\n", ["libc-rand"]),
        ("srand fires", "tools/x.cpp",
         "srand(42);\n", ["libc-rand"]),
        ("random_shuffle-like names are quiet", "src/x.cpp",
         "grand(); my_rand(); std::uniform_int_distribution<int> d;\n", []),
        ("kernel vector fires", "src/kernels/kernels_avx2.cpp",
         "std::vector<double> tmp(n);\n", ["kernel-alloc"]),
        ("kernel new fires", "src/kernels/kernels_sse42.cpp",
         "auto* p = new double[n];\n", ["kernel-alloc"]),
        ("vector outside kernels is quiet", "src/core/x.cpp",
         "std::vector<double> tmp(n);\n", []),
        ("kernel dispatch header is quiet", "src/kernels/kernel_set.cpp",
         "std::vector<KernelIsa> isas;\n", []),
        ("bare NOLINT fires", "src/x.cpp",
         "foo();  // NOLINT\n", ["bare-nolint"]),
        ("justified NOLINT is quiet", "src/x.cpp",
         "foo();  // NOLINT: the cast narrows by design here\n", []),
        ("NOLINTNEXTLINE justified above is quiet", "src/x.cpp",
         "// the registry owns this pointer for the process lifetime\n"
         "// NOLINTNEXTLINE(cppcoreguidelines-owning-memory)\nfoo();\n", []),
    ]

    checks = []
    for name, rel, content, expected in cases:
        findings = lint_source_file(rel, rel, content.splitlines())
        got = sorted({f.rule for f in findings})
        checks.append((name, got == sorted(set(expected)),
                       f"expected {expected}, got {got}"))

    supp_bad = lint_suppression_file(
        "tools/tsan.supp", ["race:third_party_thing"])
    checks.append(("bare suppression fires",
                   [f.rule for f in supp_bad] == ["bare-suppression"], ""))
    supp_good = lint_suppression_file(
        "tools/tsan.supp",
        ["# glibc's dlopen-time TLS init races benignly under TSan",
         "race:third_party_thing"])
    checks.append(("justified suppression is quiet", not supp_good, ""))

    # End-to-end over a real (temporary) tree.
    with tempfile.TemporaryDirectory() as tree:
        os.makedirs(os.path.join(tree, "src"))
        with open(os.path.join(tree, "src", "bad.cpp"), "w") as f:
            f.write("#include <cassert>\nstd::mutex mu;\n")
        findings = lint_tree(tree)
        got = sorted(f.rule for f in findings)
        checks.append(("tree walk finds both",
                       got == ["bare-mutex", "raw-assert"], f"got {got}"))

    failed = [name for name, ok, _ in checks if not ok]
    for name, ok, detail in checks:
        suffix = "" if ok else f"  ({detail})"
        print(f"  self-test {'ok  ' if ok else 'FAIL'} {name}{suffix}")
    if failed:
        print(f"pooled_lint self-test failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("pooled_lint self-test ok")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    findings = lint_tree(args.root)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"pooled_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("pooled_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
