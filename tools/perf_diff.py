#!/usr/bin/env python3
"""Diff a fresh BENCH_perf.json against the committed trajectory.

Compares the perf suite's section speedups and saturation metrics
against a baseline file (normally bench/BENCH_perf.json, the committed
trajectory) and prints the deltas. The gate is deliberately *soft*:
shared CI runners are noisy, so only catastrophic regressions fail --

  - a section's dispatched-vs-baseline speedup below half the committed
    speedup (the hard --check floors in the perf suite itself catch
    absolute regressions),
  - saturation throughput below 0.4x the committed run,
  - structural observability failures: the server served fewer jobs
    than the clients sent, the mid-load stats frame saw nothing, or the
    result cache never hit (repeated specs make hits a certainty).

Everything else -- slower RTT percentiles, deeper queues, bigger arenas
-- is reported but does not fail the job: those are trajectory signals,
not gates.

A malformed input (missing file, broken JSON, or a record without the
keys the perf suite always writes) exits 2 with a message naming the
offender, so a half-written BENCH_perf.json reads as "fix the input",
never as a perf verdict.

Usage: perf_diff.py <baseline.json> <current.json>
       perf_diff.py --self-test
"""
import json
import sys

SECTION_SPEEDUP_RATIO_FLOOR = 0.5
THROUGHPUT_RATIO_FLOOR = 0.4


class MalformedInput(Exception):
    """An input file is structurally unusable (vs. merely slow)."""


def fmt(value: float) -> str:
    return f"{value:.3g}"


def pick(mapping, key, where):
    """mapping[key], or a MalformedInput naming the record and the key."""
    if not isinstance(mapping, dict) or key not in mapping:
        raise MalformedInput(f"{where} is missing key '{key}'")
    return mapping[key]


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as error:
        raise MalformedInput(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise MalformedInput(f"{path} is not valid JSON: {error}") from error


def run_diff(baseline, current) -> int:
    failures = []

    base_sections = {}
    for section in baseline.get("sections", []):
        base_sections[pick(section, "name", "baseline section")] = section
    for section in current.get("sections", []):
        name = pick(section, "name", "current section")
        speedup = pick(section, "speedup_vs_baseline", f"section '{name}'")
        base = base_sections.get(name)
        if base is None:
            print(f"  {name}: {fmt(speedup)}x (no committed baseline)")
            continue
        base_speedup = pick(base, "speedup_vs_baseline",
                            f"baseline section '{name}'")
        ratio = speedup / base_speedup if base_speedup > 0 else 1.0
        print(f"  {name}: {fmt(speedup)}x vs committed {fmt(base_speedup)}x "
              f"({fmt(ratio)}x of trajectory)")
        if ratio < SECTION_SPEEDUP_RATIO_FLOOR:
            failures.append(
                f"{name} speedup {fmt(speedup)}x fell below "
                f"{SECTION_SPEEDUP_RATIO_FLOOR}x of committed "
                f"{fmt(base_speedup)}x")

    sat = current.get("saturation")
    if sat is None:
        failures.append("current run has no saturation section")
    else:
        base_sat = baseline.get("saturation")
        throughput = pick(sat, "throughput_jobs_per_sec",
                          "current saturation section")
        if base_sat is not None:
            base_throughput = pick(base_sat, "throughput_jobs_per_sec",
                                   "baseline saturation section")
            ratio = throughput / base_throughput if base_throughput > 0 else 1.0
            print(f"  saturation throughput: {fmt(throughput)} jobs/s vs "
                  f"committed {fmt(base_throughput)} ({fmt(ratio)}x)")
            if ratio < THROUGHPUT_RATIO_FLOOR:
                failures.append(
                    f"saturation throughput {fmt(throughput)} jobs/s fell "
                    f"below {THROUGHPUT_RATIO_FLOOR}x of committed "
                    f"{fmt(base_throughput)}")
            for key in ("rtt_p50_ms", "rtt_p95_ms", "rtt_p99_ms"):
                # Informational only, so an absent percentile (an older
                # vintage of the suite) degrades to "n/a", not an error.
                ours = fmt(sat[key]) if key in sat else "n/a"
                theirs = fmt(base_sat[key]) if key in base_sat else "n/a"
                print(f"  saturation {key}: {ours} vs committed {theirs}"
                      "  (informational)")
        else:
            print(f"  saturation throughput: {fmt(throughput)} jobs/s "
                  "(no committed baseline)")
        # Structural checks hold regardless of the baseline's vintage.
        where = "current saturation section"
        if pick(sat, "jobs_served", where) != pick(sat, "jobs", where):
            failures.append(
                f"server served {sat['jobs_served']} of {sat['jobs']} jobs")
        if pick(sat, "midload_jobs_served", where) <= 0:
            failures.append("mid-load stats frame reported zero jobs served")
        if pick(sat, "cache_hit_rate", where) <= 0.0:
            failures.append("result cache never hit under repeated specs")
        print(f"  saturation cache hit-rate {fmt(sat['cache_hit_rate'] * 100)}%"
              f", queue-depth peak {sat.get('queue_depth_peak', 'n/a')}, arena "
              f"peak {sat.get('arena_peak_bytes', 'n/a')} bytes")

    if failures:
        for failure in failures:
            print(f"  PERF DIFF FAILED: {failure}", file=sys.stderr)
        return 1
    print("  perf diff ok")
    return 0


def self_test() -> int:
    """Exercises the pass, fail, and malformed paths on fixtures."""
    saturation = {
        "throughput_jobs_per_sec": 100.0,
        "rtt_p50_ms": 1.0, "rtt_p95_ms": 2.0, "rtt_p99_ms": 3.0,
        "jobs": 64, "jobs_served": 64,
        "midload_jobs_served": 10,
        "cache_hit_rate": 0.5,
        "queue_depth_peak": 4, "arena_peak_bytes": 1024,
    }
    good = {
        "sections": [{"name": "decode", "speedup_vs_baseline": 2.0}],
        "saturation": dict(saturation),
    }

    checks = []

    checks.append(("identical runs pass", run_diff(good, good) == 0))

    slow = json.loads(json.dumps(good))
    slow["sections"][0]["speedup_vs_baseline"] = 0.5
    checks.append(("halved speedup fails", run_diff(good, slow) == 1))

    starved = json.loads(json.dumps(good))
    starved["saturation"]["throughput_jobs_per_sec"] = 10.0
    checks.append(("collapsed throughput fails", run_diff(good, starved) == 1))

    # Partial records must raise with the offending key, not KeyError.
    for mutilate, missing in (
        (lambda d: d["sections"][0].pop("speedup_vs_baseline"),
         "speedup_vs_baseline"),
        (lambda d: d["sections"][0].pop("name"), "name"),
        (lambda d: d["saturation"].pop("throughput_jobs_per_sec"),
         "throughput_jobs_per_sec"),
        (lambda d: d["saturation"].pop("jobs_served"), "jobs_served"),
    ):
        broken = json.loads(json.dumps(good))
        mutilate(broken)
        try:
            run_diff(good, broken)
            checks.append((f"missing '{missing}' raises", False))
        except MalformedInput as error:
            checks.append((f"missing '{missing}' raises", missing in str(error)))

    # An old baseline without RTT percentiles is informational, not fatal.
    vintage = json.loads(json.dumps(good))
    for key in ("rtt_p50_ms", "rtt_p95_ms", "rtt_p99_ms"):
        vintage["saturation"].pop(key)
    checks.append(("vintage baseline degrades", run_diff(vintage, good) == 0))

    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  self-test {'ok  ' if ok else 'FAIL'} {name}")
    if failed:
        print(f"perf_diff self-test failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("perf_diff self-test ok")
    return 0


def main() -> int:
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        return run_diff(load(sys.argv[1]), load(sys.argv[2]))
    except MalformedInput as error:
        print(f"perf diff: malformed input: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
