#!/usr/bin/env python3
"""Diff a fresh BENCH_perf.json against the committed trajectory.

Compares the perf suite's section speedups and saturation metrics
against a baseline file (normally bench/BENCH_perf.json, the committed
trajectory) and prints the deltas. The gate is deliberately *soft*:
shared CI runners are noisy, so only catastrophic regressions fail --

  - a section's dispatched-vs-baseline speedup below half the committed
    speedup (the hard --check floors in the perf suite itself catch
    absolute regressions),
  - saturation throughput below 0.4x the committed run,
  - structural observability failures: the server served fewer jobs
    than the clients sent, the mid-load stats frame saw nothing, or the
    result cache never hit (repeated specs make hits a certainty).

Everything else -- slower RTT percentiles, deeper queues, bigger arenas
-- is reported but does not fail the job: those are trajectory signals,
not gates.

Usage: perf_diff.py <baseline.json> <current.json>
"""
import json
import sys

SECTION_SPEEDUP_RATIO_FLOOR = 0.5
THROUGHPUT_RATIO_FLOOR = 0.4


def fmt(value: float) -> str:
    return f"{value:.3g}"


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    failures = []

    base_sections = {s["name"]: s for s in baseline.get("sections", [])}
    for section in current.get("sections", []):
        name = section["name"]
        speedup = section["speedup_vs_baseline"]
        base = base_sections.get(name)
        if base is None:
            print(f"  {name}: {fmt(speedup)}x (no committed baseline)")
            continue
        base_speedup = base["speedup_vs_baseline"]
        ratio = speedup / base_speedup if base_speedup > 0 else 1.0
        print(f"  {name}: {fmt(speedup)}x vs committed {fmt(base_speedup)}x "
              f"({fmt(ratio)}x of trajectory)")
        if ratio < SECTION_SPEEDUP_RATIO_FLOOR:
            failures.append(
                f"{name} speedup {fmt(speedup)}x fell below "
                f"{SECTION_SPEEDUP_RATIO_FLOOR}x of committed "
                f"{fmt(base_speedup)}x")

    sat = current.get("saturation")
    if sat is None:
        failures.append("current run has no saturation section")
    else:
        base_sat = baseline.get("saturation")
        throughput = sat["throughput_jobs_per_sec"]
        if base_sat is not None:
            base_throughput = base_sat["throughput_jobs_per_sec"]
            ratio = throughput / base_throughput if base_throughput > 0 else 1.0
            print(f"  saturation throughput: {fmt(throughput)} jobs/s vs "
                  f"committed {fmt(base_throughput)} ({fmt(ratio)}x)")
            if ratio < THROUGHPUT_RATIO_FLOOR:
                failures.append(
                    f"saturation throughput {fmt(throughput)} jobs/s fell "
                    f"below {THROUGHPUT_RATIO_FLOOR}x of committed "
                    f"{fmt(base_throughput)}")
            for key in ("rtt_p50_ms", "rtt_p95_ms", "rtt_p99_ms"):
                print(f"  saturation {key}: {fmt(sat[key])} vs committed "
                      f"{fmt(base_sat[key])}  (informational)")
        else:
            print(f"  saturation throughput: {fmt(throughput)} jobs/s "
                  "(no committed baseline)")
        # Structural checks hold regardless of the baseline's vintage.
        if sat["jobs_served"] != sat["jobs"]:
            failures.append(
                f"server served {sat['jobs_served']} of {sat['jobs']} jobs")
        if sat["midload_jobs_served"] <= 0:
            failures.append("mid-load stats frame reported zero jobs served")
        if sat["cache_hit_rate"] <= 0.0:
            failures.append("result cache never hit under repeated specs")
        print(f"  saturation cache hit-rate {fmt(sat['cache_hit_rate'] * 100)}%"
              f", queue-depth peak {sat['queue_depth_peak']}, arena peak "
              f"{sat['arena_peak_bytes']} bytes")

    if failures:
        for failure in failures:
            print(f"  PERF DIFF FAILED: {failure}", file=sys.stderr)
        return 1
    print("  perf diff ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
