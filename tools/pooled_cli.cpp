// pooled_cli: command-line driver for pooled-data experiments.
//
// Subcommands:
//   simulate    draw a signal, run the parallel queries, save the
//               observables (and the hidden truth separately)
//   decode      load observables, run a decoder through the engine,
//               report the estimate + decode diagnostics
//   serve       serve decode requests: newline-delimited streams from a
//               file/stdin, or concurrent connections with --listen
//   route       fan a request stream out over N serve backends with
//               digest-affinity routing and dead-shard failover
//   sweep       success-rate sweep over m, CSV to stdout
//   decoders    list every registry spec with its variants and docs
//   thresholds  print every theoretical threshold for (n, theta)
//
// Examples:
//   pooled_cli simulate --n 10000 --theta 0.3 --budget 1.4 --out run.inst
//   pooled_cli decode --in run.inst --k 16 --decoder mn
//   pooled_cli decode --in run.inst --k 16 --decoder adaptive:mn:L=16
//   pooled_cli decode --in run.inst --k 16 --noise sym:0.05:7
//   pooled_cli serve --in jobs.txt --out results.txt
//   pooled_cli serve --listen 127.0.0.1:7733 --progress
//   pooled_cli serve --listen unix:/tmp/pooled.sock
//   pooled_cli route --shard 127.0.0.1:7733 --shard 127.0.0.1:7734
//       --in jobs.txt --out results.txt
//   pooled_cli sweep --n 1000 --theta 0.3 --trials 20
//   pooled_cli decoders
//   pooled_cli thresholds --n 10000 --theta 0.3
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/serialize.hpp"
#include "core/thresholds.hpp"
#include "engine/batch_engine.hpp"
#include "engine/protocol.hpp"
#include "engine/registry.hpp"
#include "engine/result_cache.hpp"
#include "engine/serve_server.hpp"
#include "engine/shard_router.hpp"
#include "engine/socket_transport.hpp"
#include "io/csv.hpp"
#include "io/table.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_server.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/montecarlo.hpp"
#include "sim/sweep.hpp"
#include "support/assert.hpp"
#include "support/cli.hpp"

namespace {

using namespace pooled;

int usage() {
  std::fputs(
      "usage: pooled_cli <simulate|decode|serve|route|sweep|decoders|"
      "thresholds> [options]\n"
      "       pooled_cli <subcommand> --help for options\n",
      stderr);
  return 2;
}

std::string decoder_help() {
  return "decoder spec: " + DecoderRegistry::global().spec_help();
}

int cmd_simulate(int argc, const char* const* argv) {
  CliParser cli("pooled_cli simulate");
  cli.add_i64("n", "signal length", 10000);
  cli.add_f64("theta", "sparsity exponent", 0.3);
  cli.add_i64("k", "explicit weight (overrides theta when > 0)", 0);
  cli.add_f64("budget", "queries as multiple of m_MN(finite)", 1.4);
  cli.add_i64("m", "explicit query count (overrides budget when > 0)", 0);
  cli.add_i64("seed", "random seed", 1);
  cli.add_i64("gamma", "pool size (0 = the paper's n/2)", 0);
  cli.add_string("channel", "output channel: quantitative|binary|threshold",
                 "quantitative");
  cli.add_i64("t", "threshold T for --channel threshold", 2);
  cli.add_string("out", "observables output file", "run.inst");
  cli.add_string("truth-out", "hidden-truth output file (support indices)", "");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  const auto n = static_cast<std::uint32_t>(cli.i64("n"));
  const std::uint32_t k = cli.i64("k") > 0
                              ? static_cast<std::uint32_t>(cli.i64("k"))
                              : thresholds::k_of(n, cli.f64("theta"));
  const std::uint32_t m =
      cli.i64("m") > 0
          ? static_cast<std::uint32_t>(cli.i64("m"))
          : static_cast<std::uint32_t>(
                cli.f64("budget") *
                thresholds::m_mn_finite(n, std::max<std::uint32_t>(k, 2)));
  const auto seed = static_cast<std::uint64_t>(cli.i64("seed"));
  POOLED_REQUIRE(cli.i64("gamma") >= 0, "--gamma must be >= 0");
  POOLED_REQUIRE(cli.i64("t") >= 1, "--t must be >= 1");
  const ChannelKind channel = channel_kind_from_name(cli.string("channel"));
  const auto threshold = static_cast<std::uint32_t>(cli.i64("t"));
  ThreadPool pool;
  const Signal truth = Signal::random(n, k, seed);
  DesignParams params;
  params.n = n;
  params.seed = seed + 1;
  params.gamma = static_cast<std::uint64_t>(cli.i64("gamma"));
  save_instance_file(cli.string("out"),
                     simulate_spec(DesignKind::RandomRegular, params, m, truth,
                                   pool, channel, threshold));
  std::printf("wrote %s (n=%u k=%u m=%u channel=%s)\n", cli.string("out").c_str(),
              n, k, m, channel_kind_name(channel).c_str());
  if (!cli.string("truth-out").empty()) {
    std::ofstream os(cli.string("truth-out"));
    for (auto i : truth.support()) os << i << '\n';
    std::printf("wrote %s (%u support indices)\n",
                cli.string("truth-out").c_str(), k);
  }
  return 0;
}

int cmd_decode(int argc, const char* const* argv) {
  CliParser cli("pooled_cli decode");
  cli.add_string("in", "observables input file", "run.inst");
  cli.add_i64("k", "Hamming weight to decode", 16);
  cli.add_string("decoder", decoder_help(), "mn");
  cli.add_string("truth", "optional truth file to score against", "");
  cli.add_string("noise", "decode-time noise: none|sym:<rate>[:<seed>]|"
                          "gauss:<sigma>[:<seed>]", "none");
  cli.add_i64("rounds", "round cap for adaptive decoders (0 = default)", 0);
  cli.add_i64("budget", "query budget for adaptive decoders (0 = all)", 0);
  cli.add_i64("deadline-ms", "wall-clock budget in ms (0 = none)", 0);
  cli.add_i64("seed", "RNG seed for stochastic decoders (0 = default)", 0);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  POOLED_REQUIRE(cli.i64("rounds") >= 0 && cli.i64("budget") >= 0 &&
                     cli.i64("deadline-ms") >= 0 && cli.i64("seed") >= 0,
                 "--rounds/--budget/--deadline-ms/--seed must be >= 0");
  POOLED_REQUIRE(cli.i64("k") >= 0 && cli.i64("k") <= 0xFFFFFFFFll &&
                     cli.i64("rounds") <= 0xFFFFFFFFll,
                 "--k/--rounds must fit in 32 bits");
  ThreadPool pool;

  // The decode rides the engine, exactly like one serve-mode job: same
  // noise application, diagnostics, and error surface.
  DecodeJob job;
  job.spec = load_instance_file(cli.string("in"));
  job.decoder = cli.string("decoder");
  job.k = static_cast<std::uint32_t>(cli.i64("k"));
  job.noise = NoiseModel::parse(cli.string("noise"));
  job.rounds = static_cast<std::uint32_t>(cli.i64("rounds"));
  job.budget = static_cast<std::uint64_t>(cli.i64("budget"));
  job.rng_seed = static_cast<std::uint64_t>(cli.i64("seed"));
  if (cli.i64("deadline-ms") > 0) {
    job.deadline_seconds = static_cast<double>(cli.i64("deadline-ms")) / 1000.0;
  }
  if (!cli.string("truth").empty()) {
    std::ifstream is(cli.string("truth"));
    POOLED_REQUIRE(static_cast<bool>(is), "cannot open truth file");
    std::vector<std::uint32_t> support;
    std::uint32_t index;
    while (is >> index) support.push_back(index);
    job.truth_support = std::move(support);
  }

  EngineOptions options;
  options.capture_errors = false;  // a broken flag should fail loudly
  const DecodeReport report = BatchEngine(pool, options).run_one(job);
  std::printf("decoded %s with %s: support =", cli.string("in").c_str(),
              report.decoder_name.c_str());
  for (auto i : report.support) std::printf(" %u", i);
  std::printf("\nconsistent with observations: %s\n",
              report.consistent ? "yes" : "no");
  std::printf("rounds=%u queries=%llu stop=%s (%.3f ms)\n", report.rounds,
              static_cast<unsigned long long>(report.queries),
              stop_reason_name(report.stop).c_str(), 1000.0 * report.seconds);
  if (report.scored) {
    std::printf("exact=%s overlap=%.1f%%\n", report.exact ? "yes" : "no",
                100.0 * report.overlap);
  }
  return 0;
}

int cmd_decoders(int argc, const char* const* argv) {
  CliParser cli("pooled_cli decoders");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  // Discovery endpoint for serve clients: every spec the registry
  // resolves, with its variant grammar and one-line doc.
  std::printf("decoder specs: %s\n\n",
              DecoderRegistry::global().spec_help().c_str());
  ConsoleTable table({"spec", "description"});
  for (const auto& entry : DecoderRegistry::global().help_entries()) {
    table.add_row({entry.name + entry.variants_help, entry.description});
  }
  table.print(std::cout);
  std::printf(
      "\nv2 job options apply to any spec: noise (sym/gauss), deadline-ms,\n"
      "and -- for adaptive -- rounds and budget (see engine/protocol.hpp).\n");
  return 0;
}

/// Set by SIGINT/SIGTERM so the socket server winds down cleanly.
std::atomic<bool> g_serve_interrupted{false};

void handle_serve_signal(int) { g_serve_interrupted.store(true); }

/// Prints the cache summary line from a metrics snapshot -- the same
/// cache.* counters the stats frame and every exporter report -- so the
/// stderr line can never drift from what the registry says.
void print_cache_line(const MetricsSnapshot& snapshot) {
  if (snapshot.find("cache.hits") == nullptr) return;  // no cache wired
  const std::uint64_t hits = snapshot.counter_value("cache.hits");
  const std::uint64_t misses = snapshot.counter_value("cache.misses");
  const std::uint64_t lookups = hits + misses;
  std::fprintf(
      stderr,
      "cache: capacity=%lld size=%lld hits=%llu misses=%llu "
      "evictions=%llu snapshot-writes=%llu snapshot-restores=%llu "
      "snapshot-rejected=%llu hit-rate=%.1f%%\n",
      static_cast<long long>(snapshot.gauge_value("cache.capacity")),
      static_cast<long long>(snapshot.gauge_value("cache.size")),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(snapshot.counter_value("cache.evictions")),
      static_cast<unsigned long long>(
          snapshot.counter_value("cache.snapshot_writes")),
      static_cast<unsigned long long>(
          snapshot.counter_value("cache.snapshot_restores")),
      static_cast<unsigned long long>(
          snapshot.counter_value("cache.snapshot_rejected")),
      lookups == 0 ? 0.0
                   : 100.0 * static_cast<double>(hits) /
                         static_cast<double>(lookups));
}

int cmd_serve(int argc, const char* const* argv) {
  CliParser cli("pooled_cli serve");
  cli.add_string("in", "request file, '-' = stdin (see engine/protocol.hpp)", "-");
  cli.add_string("out", "result file, '-' = stdout", "-");
  cli.add_string("listen",
                 "serve connections on <host>:<port> or unix:/path instead of "
                 "--in/--out streams (port 0 picks a free port)", "");
  cli.add_i64("batch", "jobs per scheduling window (0 = 4x threads)", 0);
  cli.add_i64("threads", "worker threads (0 = hardware concurrency)", 0);
  cli.add_i64("cache", "result-cache capacity in reports (0 = no cache)", 1024);
  cli.add_string("cache-file",
                 "durable cache snapshot path: restored on startup, spilled "
                 "periodically and on drain/exit (see engine/cache_store.hpp)",
                 "");
  cli.add_f64("snapshot-interval",
              "seconds between periodic cache snapshots with --cache-file",
              30.0);
  cli.add_flag("progress", "stream per-round decode progress to stderr");
  cli.add_string("metrics",
                 "plain-text metrics endpoint on <host>:<port> or unix:/path; "
                 "'-' = periodic snapshot dump to stderr", "");
  cli.add_string("trace", "per-job JSONL span log file (see obs/trace.hpp)", "");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  POOLED_REQUIRE(cli.i64("threads") >= 0, "--threads must be >= 0");
  POOLED_REQUIRE(cli.i64("batch") >= 0, "--batch must be >= 0");
  POOLED_REQUIRE(cli.i64("cache") >= 0, "--cache must be >= 0");
  POOLED_REQUIRE(cli.f64("snapshot-interval") > 0.0,
                 "--snapshot-interval must be > 0");
  const std::string cache_file = cli.string("cache-file");
  POOLED_REQUIRE(cache_file.empty() || cli.i64("cache") > 0,
                 "--cache-file needs --cache > 0");
  ThreadPool pool(static_cast<unsigned>(cli.i64("threads")));
  std::unique_ptr<ResultCache> cache;
  if (cli.i64("cache") > 0) {
    cache = std::make_unique<ResultCache>(static_cast<std::size_t>(cli.i64("cache")));
  }
  if (cache && !cache_file.empty()) {
    try {
      const std::size_t restored = cache->restore(cache_file);
      if (restored > 0) {
        std::fprintf(stderr, "cache: restored %zu entries from %s\n", restored,
                     cache_file.c_str());
      }
    } catch (const ContractError& e) {
      // A corrupt snapshot must not stop the server: it starts cold and
      // the rejection is counted (cache.snapshot_rejected) and logged.
      std::fprintf(stderr, "cache: restore rejected, starting cold: %s\n",
                   e.what());
    }
  }
  // Spill failures (full disk, bad path) are survivable -- decoding
  // continues -- but they mean durability was not delivered, so they are
  // counted and turn the exit status nonzero.
  std::atomic<std::uint64_t> snapshot_failures{0};
  const auto spill_cache = [&]() -> bool {
    if (!cache || cache_file.empty()) return false;
    try {
      cache->spill(cache_file);
      return true;
    } catch (const std::exception& e) {
      snapshot_failures.fetch_add(1);
      std::fprintf(stderr, "cache: snapshot failed: %s\n", e.what());
      return false;
    }
  };
  MetricsRegistry registry;
  EngineOptions options;
  options.max_in_flight = static_cast<std::size_t>(cli.i64("batch"));
  options.cache = cache.get();
  options.metrics = &registry;
  const BatchEngine engine(pool, options);
  std::unique_ptr<ProgressStream> progress;
  if (cli.flag("progress")) progress = std::make_unique<ProgressStream>(std::cerr);
  std::ofstream trace_file;
  std::unique_ptr<TraceRecorder> trace;
  if (!cli.string("trace").empty()) {
    trace_file.open(cli.string("trace"));
    POOLED_REQUIRE(static_cast<bool>(trace_file),
                   "cannot open '" + cli.string("trace") + "' for writing");
    trace = std::make_unique<TraceRecorder>(trace_file);
  }
  const std::string metrics_arg = cli.string("metrics");
  const bool metrics_dump = metrics_arg == "-";

  if (!cli.string("listen").empty()) {
    // Socket mode: concurrent connections, until SIGINT/SIGTERM.
    ServeServerOptions server_options;
    server_options.chunk = options.max_in_flight;
    server_options.progress = progress.get();
    server_options.metrics = &registry;
    server_options.trace = trace.get();
    if (cache && !cache_file.empty()) {
      server_options.snapshot_seconds = cli.f64("snapshot-interval");
      server_options.on_snapshot = [&] { (void)spill_cache(); };
    }
    server_options.on_drain = [&](DrainSummary& summary) {
      if (cache) summary.cache_entries = cache->stats().size;
      summary.snapshot_written = spill_cache();
    };
    ServeServer server(
        ListenSocket::bind_and_listen(SocketAddress::parse(cli.string("listen"))),
        engine, server_options);
    std::unique_ptr<MetricsServer> metrics_server;
    if (!metrics_arg.empty() && !metrics_dump) {
      metrics_server = std::make_unique<MetricsServer>(
          ListenSocket::bind_and_listen(SocketAddress::parse(metrics_arg)),
          [&server] {
            std::ostringstream body;
            write_snapshot_text(body, server.build_snapshot());
            return body.str();
          });
      metrics_server->start();
      std::fprintf(stderr, "metrics on %s\n",
                   metrics_server->local_address().to_string().c_str());
    }
    server.start();
    // The "listening on" line is the readiness signal scripts wait for
    // (and carries the real port when --listen asked for port 0).
    std::fprintf(stderr, "listening on %s (%u threads)\n",
                 server.address().to_string().c_str(), pool.size());
    g_serve_interrupted.store(false);
    std::signal(SIGINT, handle_serve_signal);
    std::signal(SIGTERM, handle_serve_signal);
    int ticks = 0;
    bool signalled = false;
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (metrics_dump && ++ticks % 100 == 0) {  // ~every 5 seconds
        std::ostringstream body;
        write_snapshot_text(body, server.build_snapshot());
        std::fputs(body.str().c_str(), stderr);
      }
      if (g_serve_interrupted.exchange(false)) {
        // First SIGINT/SIGTERM starts the same graceful drain the
        // pooled-drain frame does: in-flight windows finish, the cache
        // snapshots, then we fall out below. A second signal means "now".
        if (signalled) break;
        signalled = true;
        server.begin_drain();
      }
      if (server.draining() && server.stats().active_connections == 0) break;
    }
    if (metrics_server) metrics_server->stop();
    server.stop();
    (void)spill_cache();  // final snapshot: nothing decoded after this
    const ServeServerStats stats = server.stats();
    std::fprintf(stderr,
                 "served %llu jobs over %llu connections "
                 "(%llu cancelled, %llu failed, %llu write-failures, "
                 "%llu snapshot-failures, %llu reaped, %llu errored)\n",
                 static_cast<unsigned long long>(stats.jobs_served),
                 static_cast<unsigned long long>(stats.connections_accepted),
                 static_cast<unsigned long long>(stats.jobs_cancelled),
                 static_cast<unsigned long long>(stats.jobs_failed),
                 static_cast<unsigned long long>(stats.write_failures),
                 static_cast<unsigned long long>(snapshot_failures.load()),
                 static_cast<unsigned long long>(stats.connections_reaped),
                 static_cast<unsigned long long>(stats.connections_errored));
    print_cache_line(server.build_snapshot());
    // Clean drain exits 0; undelivered frames or failed snapshots mean
    // the shutdown lost something and the caller must know.
    return stats.write_failures > 0 || snapshot_failures.load() > 0 ? 1 : 0;
  }
  POOLED_REQUIRE(metrics_arg.empty() || metrics_dump,
                 "--metrics <addr> needs --listen; use --metrics - for a "
                 "final snapshot on stream serve");

  std::ifstream file_in;
  std::istream* in = &std::cin;
  if (cli.string("in") != "-") {
    file_in.open(cli.string("in"));
    POOLED_REQUIRE(static_cast<bool>(file_in),
                   "cannot open '" + cli.string("in") + "' for reading");
    in = &file_in;
  }
  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (cli.string("out") != "-") {
    file_out.open(cli.string("out"));
    POOLED_REQUIRE(static_cast<bool>(file_out),
                   "cannot open '" + cli.string("out") + "' for writing");
    out = &file_out;
  }

  const std::function<void(DrainSummary&)> on_drain =
      [&](DrainSummary& summary) {
        if (cache) summary.cache_entries = cache->stats().size;
        summary.snapshot_written = spill_cache();
      };
  const std::size_t served =
      serve_stream(*in, *out, engine, options.max_in_flight, progress.get(),
                   /*cancel=*/nullptr, &registry, trace.get(), &on_drain);
  (void)spill_cache();  // final snapshot on clean exit
  std::fprintf(stderr, "served %zu jobs over %u threads\n", served, pool.size());
  MetricsSnapshot snapshot;
  snapshot.values.push_back(MetricValue::of_counter("serve.jobs_served", served));
  if (cache) {
    const CacheStats cache_stats = cache->stats();
    append_stats_snapshot(snapshot, &cache_stats, &registry);
  } else {
    append_stats_snapshot(snapshot, nullptr, &registry);
  }
  print_cache_line(snapshot);
  if (metrics_dump) {
    std::ostringstream body;
    write_snapshot_text(body, snapshot);
    std::fputs(body.str().c_str(), stderr);
  }
  return snapshot_failures.load() > 0 ? 1 : 0;
}

int cmd_route(int argc, const char* const* argv) {
  CliParser cli("pooled_cli route");
  cli.add_string_list("shard",
                      "backend serve address (<host>:<port> or unix:/path); "
                      "repeat once per shard");
  cli.add_string("in", "request file, '-' = stdin (see engine/protocol.hpp)", "-");
  cli.add_string("out", "result file, '-' = stdout", "-");
  cli.add_i64("window", "max jobs in flight (0 = 4x shard count)", 0);
  cli.add_f64("probe", "liveness-probe / reconnect period in seconds", 0.05);
  cli.add_f64("dial-timeout", "per-attempt connect timeout in seconds", 1.0);
  cli.add_f64("all-dead-timeout",
              "fail pending jobs after this many seconds of full-fleet "
              "outage (0 = wait forever)", 30.0);
  cli.add_flag("no-affinity",
               "round-robin every job instead of routing by instance digest");
  cli.add_i64("drain-shard",
              "gracefully drain shard <i> (0-based) before serving: it "
              "snapshots its cache and exits, the prober readmits it when "
              "it restarts (-1 = none)", -1);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  POOLED_REQUIRE(!cli.string_list("shard").empty(),
                 "route needs at least one --shard <addr>");
  POOLED_REQUIRE(cli.i64("window") >= 0, "--window must be >= 0");
  std::vector<SocketAddress> shards;
  for (const std::string& addr : cli.string_list("shard")) {
    shards.push_back(SocketAddress::parse(addr));
  }

  ShardRouterOptions options;
  options.probe_seconds = cli.f64("probe");
  options.dial_timeout_seconds = cli.f64("dial-timeout");
  options.all_dead_fail_seconds = cli.f64("all-dead-timeout");
  options.affinity = !cli.flag("no-affinity");
  ShardRouter router(std::move(shards), options);
  router.start();
  std::fprintf(stderr, "routing over %zu shards (%zu alive)\n",
               router.shard_count(), router.alive_count());
  if (cli.i64("drain-shard") >= 0) {
    const auto index = static_cast<std::size_t>(cli.i64("drain-shard"));
    const std::optional<DrainSummary> summary = router.drain_shard(index);
    if (summary) {
      std::fprintf(stderr,
                   "drained shard %zu: %llu jobs served, %llu cache entries, "
                   "snapshot %s\n",
                   index,
                   static_cast<unsigned long long>(summary->jobs_served),
                   static_cast<unsigned long long>(summary->cache_entries),
                   summary->snapshot_written ? "written" : "not written");
    } else {
      std::fprintf(stderr,
                   "drain of shard %zu got no summary (down or timed out)\n",
                   index);
    }
  }

  std::ifstream file_in;
  std::istream* in = &std::cin;
  if (cli.string("in") != "-") {
    file_in.open(cli.string("in"));
    POOLED_REQUIRE(static_cast<bool>(file_in),
                   "cannot open '" + cli.string("in") + "' for reading");
    in = &file_in;
  }
  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (cli.string("out") != "-") {
    file_out.open(cli.string("out"));
    POOLED_REQUIRE(static_cast<bool>(file_out),
                   "cannot open '" + cli.string("out") + "' for writing");
    out = &file_out;
  }

  const std::size_t served = route_requests(
      *in, *out, router, static_cast<std::size_t>(cli.i64("window")));
  router.stop();
  std::fprintf(stderr, "routed %zu jobs\n", served);
  for (const ShardStatus& status : router.shard_statuses()) {
    std::fprintf(stderr,
                 "  shard %s: %llu sent, %llu answered, %llu lost, "
                 "%llu admitted%s\n",
                 status.address.to_string().c_str(),
                 static_cast<unsigned long long>(status.jobs_sent),
                 static_cast<unsigned long long>(status.results_received),
                 static_cast<unsigned long long>(status.times_lost),
                 static_cast<unsigned long long>(status.times_admitted),
                 status.draining ? ", draining" : "");
  }
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  CliParser cli("pooled_cli sweep");
  cli.add_i64("n", "signal length", 1000);
  cli.add_f64("theta", "sparsity exponent", 0.3);
  cli.add_i64("trials", "trials per grid point", 20);
  cli.add_i64("points", "grid points", 12);
  cli.add_f64("max-factor", "grid top as multiple of m_MN(finite)", 2.5);
  cli.add_string("decoder", decoder_help(), "mn");
  cli.add_string("noise", "per-trial noise: none|sym:<rate>[:<seed>]|"
                          "gauss:<sigma>[:<seed>]", "none");
  cli.add_i64("seed", "seed base", 1);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  ThreadPool pool;
  TrialConfig config;
  config.n = static_cast<std::uint32_t>(cli.i64("n"));
  config.k = thresholds::k_of(config.n, cli.f64("theta"));
  config.seed_base = static_cast<std::uint64_t>(cli.i64("seed"));
  config.noise = NoiseModel::parse(cli.string("noise"));
  const double m_star =
      thresholds::m_mn_finite(config.n, std::max<std::uint32_t>(config.k, 2));
  const auto grid = linear_grid(
      std::max<std::uint32_t>(2, static_cast<std::uint32_t>(0.2 * m_star)),
      static_cast<std::uint32_t>(cli.f64("max-factor") * m_star),
      static_cast<std::uint32_t>(cli.i64("points")));
  const auto decoder = make_decoder(cli.string("decoder"));
  const auto sweep =
      sweep_queries(config, *decoder, grid,
                    static_cast<std::uint32_t>(cli.i64("trials")), pool);
  CsvWriter csv(std::cout);
  csv.header({"m", "success_rate", "ci_low", "ci_high", "overlap"});
  for (const SweepPoint& point : sweep) {
    csv.cell(point.m)
        .cell(point.success_rate)
        .cell(point.success_ci.low)
        .cell(point.success_ci.high)
        .cell(point.overlap_mean);
    csv.end_row();
  }
  return 0;
}

int cmd_thresholds(int argc, const char* const* argv) {
  CliParser cli("pooled_cli thresholds");
  cli.add_i64("n", "signal length", 10000);
  cli.add_f64("theta", "sparsity exponent", 0.3);
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::fputs(cli.help_text().c_str(), stdout);
    return 0;
  }
  const auto n = static_cast<std::uint64_t>(cli.i64("n"));
  const std::uint32_t k = thresholds::k_of(n, cli.f64("theta"));
  const std::uint64_t k2 = std::max<std::uint32_t>(k, 2);
  ConsoleTable table({"threshold", "queries", "source"});
  table.add_row({"counting bound", format_compact(thresholds::counting_bound(n, k2), 5),
                 "folklore lower bound"});
  table.add_row({"m_seq", format_compact(thresholds::m_seq(n, k2), 5),
                 "sequential optimum (Eq. 1)"});
  table.add_row({"m_para (IT)", format_compact(thresholds::m_para(n, k2), 5),
                 "Theorem 2 / Djackov"});
  table.add_row({"binary GT", format_compact(thresholds::m_binary_gt(n, k2), 5),
                 "Coja-Oghlan et al. 2021 (theta<=0.409)"});
  table.add_row({"Karimi sparse", format_compact(thresholds::m_karimi_sparse(n, k2), 5),
                 "graph codes, 1.515 k ln(n/k)"});
  table.add_row({"Karimi irregular",
                 format_compact(thresholds::m_karimi_irregular(n, k2), 5),
                 "graph codes, 1.72 k ln(n/k)"});
  table.add_row({"l1 (Donoho-Tanner)",
                 format_compact(thresholds::m_l1_donoho_tanner(n, k2), 5),
                 "compressed sensing"});
  table.add_row({"basis pursuit", format_compact(thresholds::m_basis_pursuit(n, k2), 5),
                 "2 k ln n"});
  table.add_row({"m_MN asymptotic", format_compact(thresholds::m_mn(n, k2), 5),
                 "Theorem 1"});
  table.add_row({"m_MN finite-size", format_compact(thresholds::m_mn_finite(n, k2), 5),
                 "Theorem 1 + Section V remark"});
  std::printf("thresholds for n=%llu, k=%u (theta=%.3f)\n",
              static_cast<unsigned long long>(n), k, thresholds::theta_of(n, k2));
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "decode") return cmd_decode(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    if (command == "route") return cmd_route(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "decoders") return cmd_decoders(argc - 1, argv + 1);
    if (command == "thresholds") return cmd_thresholds(argc - 1, argv + 1);
  } catch (const pooled::ContractError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
