#!/usr/bin/env python3
"""Per-directory line coverage, soft-gated against a committed floor.

Collects line coverage from a POOLED_COVERAGE=ON build -- either
backend:

  gcov      GCC builds (--coverage). Every .gcda under the build tree is
            exported with `gcov --json-format --stdout`; per-line hit
            counts are merged max-wise across translation units, so a
            header exercised by one test counts as covered everywhere.
  llvm-cov  Clang builds (-fprofile-instr-generate -fcoverage-mapping).
            .profraw files are merged with llvm-profdata and exported
            with `llvm-cov export`; the binaries that produced the
            profiles are passed as --object arguments.

Only files under src/ count: tests cover themselves by construction and
fuzz harnesses are drivers, so including either would inflate the
number. Results aggregate to the second path component (src/core,
src/engine, ...) and are written as JSON:

  {"tool": "gcov", "total": {...},
   "directories": {"src/core": {"lines_total": N, "lines_covered": C,
                                "percent": P}, ...}}

The gate (--baseline bench/COVERAGE_baseline.json) is deliberately
*soft*, in the tools/perf_diff.py tradition: coverage numbers drift
across compilers and gcov/llvm-cov disagree on line attribution (the
baseline records which tool produced it), so only real erosion fails --

  - a directory present in the baseline but absent from the current
    report (a whole subsystem fell out of the instrumented build),
  - a directory whose percent fell more than SLACK_POINTS below its
    committed floor.

New directories and improvements are reported, never required. A
malformed input exits 2 with a message naming the offender.

Usage: coverage_report.py collect --build <dir> [--root <repo>]
           [--objects bin...] [--output coverage.json]
           [--baseline bench/COVERAGE_baseline.json]
       coverage_report.py gate --current coverage.json
           --baseline bench/COVERAGE_baseline.json
       coverage_report.py --self-test
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile

SLACK_POINTS = 7.5


class MalformedInput(Exception):
    """An input is structurally unusable (vs. merely low coverage)."""


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as error:
        raise MalformedInput(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise MalformedInput(f"{path} is not valid JSON: {error}") from error


# ---------------------------------------------------------------------
# Collection

def merge_line_hits(hits, path, line_number, count):
    """hits[path][line] = max over TUs: a line is covered if any TU ran
    it, instrumentable if any TU saw it."""
    lines = hits.setdefault(path, {})
    lines[line_number] = max(lines.get(line_number, 0), count)


def collect_gcov(build_dir, root):
    gcda = []
    for directory, _, names in os.walk(build_dir):
        gcda.extend(os.path.join(directory, n)
                    for n in names if n.endswith(".gcda"))
    if not gcda:
        raise MalformedInput(
            f"no .gcda files under {build_dir} (build with "
            "-DPOOLED_COVERAGE=ON and run the tests first)")
    hits = {}
    for data_file in sorted(gcda):
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(data_file)],
            cwd=os.path.dirname(data_file),
            capture_output=True, text=True)
        if proc.returncode != 0:
            raise MalformedInput(
                f"gcov failed on {data_file}: {proc.stderr.strip()}")
        # --stdout emits one JSON document per .gcda given; we pass one.
        try:
            document = json.loads(proc.stdout)
        except json.JSONDecodeError as error:
            raise MalformedInput(
                f"gcov emitted invalid JSON for {data_file}: {error}"
            ) from error
        ingest_gcov_document(document, os.path.dirname(data_file), root, hits)
    return hits


def ingest_gcov_document(document, cwd, root, hits):
    for record in document.get("files", []):
        source = record.get("file", "")
        if not os.path.isabs(source):
            source = os.path.normpath(os.path.join(cwd, source))
        rel = relative_source(source, root)
        if rel is None:
            continue
        for line in record.get("lines", []):
            merge_line_hits(hits, rel,
                            line.get("line_number", 0), line.get("count", 0))


def collect_llvm(build_dir, root, objects):
    profraw = []
    for directory, _, names in os.walk(build_dir):
        profraw.extend(os.path.join(directory, n)
                       for n in names if n.endswith(".profraw"))
    if not profraw:
        raise MalformedInput(
            f"no .profraw files under {build_dir} (set LLVM_PROFILE_FILE "
            "when running the instrumented tests)")
    if not objects:
        raise MalformedInput("llvm-cov needs --objects <instrumented binaries>")
    profdata = os.path.join(build_dir, "pooled-merged.profdata")
    merge = subprocess.run(
        [llvm_tool("llvm-profdata"), "merge", "-sparse", "-o", profdata]
        + sorted(profraw),
        capture_output=True, text=True)
    if merge.returncode != 0:
        raise MalformedInput(f"llvm-profdata merge failed: "
                             f"{merge.stderr.strip()}")
    command = [llvm_tool("llvm-cov"), "export", "-instr-profile", profdata,
               objects[0]]
    for extra in objects[1:]:
        command += ["-object", extra]
    export = subprocess.run(command, capture_output=True, text=True)
    if export.returncode != 0:
        raise MalformedInput(f"llvm-cov export failed: "
                             f"{export.stderr.strip()}")
    try:
        document = json.loads(export.stdout)
    except json.JSONDecodeError as error:
        raise MalformedInput(
            f"llvm-cov emitted invalid JSON: {error}") from error
    hits = {}
    ingest_llvm_document(document, root, hits)
    return hits


def ingest_llvm_document(document, root, hits):
    for data in document.get("data", []):
        for record in data.get("files", []):
            rel = relative_source(record.get("filename", ""), root)
            if rel is None:
                continue
            # segments: [line, col, count, has_count, is_region_entry, ...]
            for segment in record.get("segments", []):
                if len(segment) < 4 or not segment[3]:
                    continue
                merge_line_hits(hits, rel, segment[0], segment[2])


def llvm_tool(name):
    """Prefer the bare name; fall back to the suffixed vintage CI ships."""
    for candidate in (name, f"{name}-14"):
        try:
            subprocess.run([candidate, "--version"], capture_output=True)
            return candidate
        except FileNotFoundError:
            continue
    raise MalformedInput(f"{name} not found on PATH")


def relative_source(source, root):
    """Repo-relative path for sources under <root>/src, else None."""
    try:
        rel = os.path.relpath(os.path.realpath(source),
                              os.path.realpath(root))
    except ValueError:
        return None
    rel = rel.replace(os.sep, "/")
    if rel.startswith("src/") and ".." not in rel.split("/"):
        return rel
    return None


def summarize(hits):
    directories = {}
    total_lines = 0
    total_covered = 0
    for path, lines in hits.items():
        parts = path.split("/")
        directory = "/".join(parts[:2]) if len(parts) > 2 else parts[0]
        entry = directories.setdefault(
            directory, {"lines_total": 0, "lines_covered": 0})
        entry["lines_total"] += len(lines)
        entry["lines_covered"] += sum(1 for c in lines.values() if c > 0)
    for entry in directories.values():
        entry["percent"] = round(
            100.0 * entry["lines_covered"] / entry["lines_total"], 2
        ) if entry["lines_total"] else 0.0
        total_lines += entry["lines_total"]
        total_covered += entry["lines_covered"]
    return {
        "directories": dict(sorted(directories.items())),
        "total": {
            "lines_total": total_lines,
            "lines_covered": total_covered,
            "percent": round(100.0 * total_covered / total_lines, 2)
            if total_lines else 0.0,
        },
    }


# ---------------------------------------------------------------------
# Gate

def run_gate(baseline, current) -> int:
    failures = []
    base_dirs = baseline.get("directories")
    cur_dirs = current.get("directories")
    if not isinstance(base_dirs, dict) or not base_dirs:
        raise MalformedInput("baseline has no 'directories' table")
    if not isinstance(cur_dirs, dict):
        raise MalformedInput("current report has no 'directories' table")
    if baseline.get("tool") != current.get("tool"):
        print(f"  note: baseline from {baseline.get('tool')}, current from "
              f"{current.get('tool')} -- line attribution differs across "
              "tools, the slack absorbs it")
    for directory, base in sorted(base_dirs.items()):
        if "percent" not in base:
            raise MalformedInput(
                f"baseline directory '{directory}' is missing 'percent'")
        cur = cur_dirs.get(directory)
        if cur is None:
            failures.append(
                f"{directory} vanished from the instrumented build "
                f"(baseline {base['percent']}%)")
            continue
        if "percent" not in cur:
            raise MalformedInput(
                f"current directory '{directory}' is missing 'percent'")
        floor = base["percent"] - SLACK_POINTS
        verdict = "ok" if cur["percent"] >= floor else "FAIL"
        print(f"  {directory}: {cur['percent']}% vs committed "
              f"{base['percent']}% (floor {floor:.2f}%) {verdict}")
        if cur["percent"] < floor:
            failures.append(
                f"{directory} coverage {cur['percent']}% fell below "
                f"{floor:.2f}% (committed {base['percent']}% - "
                f"{SLACK_POINTS} points)")
    for directory in sorted(set(cur_dirs) - set(base_dirs)):
        print(f"  {directory}: {cur_dirs[directory].get('percent')}% "
              "(new, informational)")
    if failures:
        for failure in failures:
            print(f"  COVERAGE GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("  coverage gate ok")
    return 0


# ---------------------------------------------------------------------

def self_test() -> int:
    checks = []

    # gcov-document ingestion merges max-wise across TUs.
    hits = {}
    doc_a = {"files": [{"file": "/repo/src/core/a.cpp",
                        "lines": [{"line_number": 1, "count": 0},
                                  {"line_number": 2, "count": 3}]}]}
    doc_b = {"files": [{"file": "/repo/src/core/a.cpp",
                        "lines": [{"line_number": 1, "count": 5},
                                  {"line_number": 2, "count": 0}]}]}
    ingest_gcov_document(doc_a, "/build", "/repo", hits)
    ingest_gcov_document(doc_b, "/build", "/repo", hits)
    merged = hits.get("src/core/a.cpp", {})
    checks.append(("gcov max-merge across TUs",
                   merged == {1: 5, 2: 3}, f"got {merged}"))

    # Non-src files (tests, system headers) are excluded.
    hits = {}
    ingest_gcov_document(
        {"files": [{"file": "/repo/tests/t.cpp",
                    "lines": [{"line_number": 1, "count": 1}]},
                   {"file": "/usr/include/c++/12/vector",
                    "lines": [{"line_number": 9, "count": 9}]}]},
        "/build", "/repo", hits)
    checks.append(("non-src files excluded", hits == {}, f"got {hits}"))

    # Relative gcov paths resolve against the gcda directory.
    hits = {}
    ingest_gcov_document(
        {"files": [{"file": "../../../src/obs/m.cpp",
                    "lines": [{"line_number": 4, "count": 1}]}]},
        "/repo/build/CMakeFiles/pooled.dir", "/repo", hits)
    checks.append(("relative paths resolve", "src/obs/m.cpp" in hits,
                   f"got {list(hits)}"))

    # llvm segments: only has_count segments contribute.
    hits = {}
    ingest_llvm_document(
        {"data": [{"files": [{"filename": "/repo/src/core/a.cpp",
                              "segments": [[1, 1, 7, True, True],
                                           [2, 1, 0, False, False]]}]}]},
        "/repo", hits)
    checks.append(("llvm has_count filter",
                   hits.get("src/core/a.cpp") == {1: 7}, f"got {hits}"))

    summary = summarize({"src/core/a.cpp": {1: 5, 2: 0},
                         "src/core/b.cpp": {1: 1},
                         "src/obs/m.cpp": {4: 0}})
    checks.append(("summary percents",
                   summary["directories"]["src/core"]["percent"] == 66.67
                   and summary["directories"]["src/obs"]["percent"] == 0.0
                   and summary["total"]["lines_total"] == 4,
                   f"got {summary}"))

    good = {"tool": "gcov", "directories": {
        "src/core": {"lines_total": 100, "lines_covered": 90,
                     "percent": 90.0},
        "src/obs": {"lines_total": 50, "lines_covered": 40, "percent": 80.0},
    }, "total": {"lines_total": 150, "lines_covered": 130, "percent": 86.67}}

    checks.append(("identical reports pass", run_gate(good, good) == 0))

    drifted = json.loads(json.dumps(good))
    drifted["directories"]["src/core"]["percent"] = 90.0 - SLACK_POINTS + 0.1
    checks.append(("drift inside slack passes",
                   run_gate(good, drifted) == 0))

    eroded = json.loads(json.dumps(good))
    eroded["directories"]["src/core"]["percent"] = 90.0 - SLACK_POINTS - 0.1
    checks.append(("erosion past slack fails", run_gate(good, eroded) == 1))

    vanished = json.loads(json.dumps(good))
    del vanished["directories"]["src/obs"]
    checks.append(("vanished directory fails", run_gate(good, vanished) == 1))

    grown = json.loads(json.dumps(good))
    grown["directories"]["src/new"] = {"lines_total": 10, "lines_covered": 1,
                                       "percent": 10.0}
    checks.append(("new directory is informational",
                   run_gate(good, grown) == 0))

    try:
        run_gate({"tool": "gcov", "directories": {"src/core": {}}}, good)
        checks.append(("missing percent raises", False, ""))
    except MalformedInput as error:
        checks.append(("missing percent raises", "percent" in str(error), ""))

    # End-to-end over a fabricated report file pair.
    with tempfile.TemporaryDirectory() as tree:
        base_path = os.path.join(tree, "base.json")
        with open(base_path, "w") as f:
            json.dump(good, f)
        checks.append(("load round-trip", load(base_path) == good, ""))

    failed = [entry[0] for entry in checks if not entry[1]]
    for entry in checks:
        name, ok = entry[0], entry[1]
        detail = f"  ({entry[2]})" if not ok and len(entry) > 2 else ""
        print(f"  self-test {'ok  ' if ok else 'FAIL'} {name}{detail}")
    if failed:
        print(f"coverage_report self-test failed: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print("coverage_report self-test ok")
    return 0


def main() -> int:
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    collect = sub.add_parser("collect")
    collect.add_argument("--build", required=True)
    collect.add_argument("--root", default=".")
    collect.add_argument("--objects", nargs="*", default=[],
                         help="instrumented binaries (llvm-cov backend)")
    collect.add_argument("--output", default="coverage.json")
    collect.add_argument("--baseline", default=None,
                         help="also gate against this committed report")
    gate = sub.add_parser("gate")
    gate.add_argument("--current", required=True)
    gate.add_argument("--baseline", required=True)
    args = parser.parse_args()

    try:
        if args.command == "collect":
            has_profraw = any(
                name.endswith(".profraw")
                for _, _, names in os.walk(args.build) for name in names)
            if has_profraw:
                tool = "llvm-cov"
                hits = collect_llvm(args.build, args.root, args.objects)
            else:
                tool = "gcov"
                hits = collect_gcov(args.build, args.root)
            report = {"tool": tool, **summarize(hits)}
            with open(args.output, "w") as f:
                json.dump(report, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"coverage ({tool}) -> {args.output}")
            for directory, entry in report["directories"].items():
                print(f"  {directory}: {entry['percent']}% "
                      f"({entry['lines_covered']}/{entry['lines_total']})")
            print(f"  total: {report['total']['percent']}%")
            if args.baseline:
                return run_gate(load(args.baseline), report)
            return 0
        return run_gate(load(args.baseline), load(args.current))
    except MalformedInput as error:
        print(f"coverage_report: malformed input: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
