#!/usr/bin/env python3
"""Minimal socket client for the pooled serve protocol (CI smoke).

Connects to a `pooled_cli serve --listen` server, streams one or more
request files, half-closes the write side, and prints every byte the
server sends back (result frames; the server's blank-line liveness
probes are harmless noise between frames). Exits nonzero if the server
hangs up without sending anything.

Usage: socket_client_smoke.py <host> <port> <jobs-file> [<jobs-file>...]
"""
import socket
import sys


def main() -> int:
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    host, port = sys.argv[1], int(sys.argv[2])
    with socket.create_connection((host, port), timeout=60) as conn:
        for path in sys.argv[3:]:
            with open(path, "rb") as jobs:
                conn.sendall(jobs.read())
        conn.shutdown(socket.SHUT_WR)  # "no more requests"
        received = b""
        while True:
            chunk = conn.recv(1 << 16)
            if not chunk:
                break
            received += chunk
    sys.stdout.write(received.decode())
    return 0 if b"pooled-result" in received else 1


if __name__ == "__main__":
    sys.exit(main())
