#!/usr/bin/env python3
"""Minimal socket client for the pooled serve protocol (CI smoke).

Connects to a `pooled_cli serve --listen` server, streams one or more
request files, half-closes the write side, and prints every byte the
server sends back (result frames; the server's blank-line liveness
probes are harmless noise between frames). Exits nonzero if the server
hangs up without sending anything.

Usage: socket_client_smoke.py <host> <port> <jobs-file> [<jobs-file>...]
       socket_client_smoke.py --stats-probe <host> <port> <jobs-file>
       socket_client_smoke.py --route <pooled_cli> <jobs-file>
       socket_client_smoke.py --rolling-restart <pooled_cli> <jobs-file>

--stats-probe exercises the v2 `pooled-stats` observability frame under
load: connection A sends the jobs file and reads its results *without*
half-closing (so it stays live), then connection B sends a stats frame
and asserts the snapshot reconciles with the work -- jobs_served covers
every job A sent and connections_active counts both connections. The
stats frame body prints to stdout for the CI log.

--route exercises the shard router's failover end to end: it spawns two
`pooled_cli serve --listen` shards and one `pooled_cli route` process
over them, streams the jobs file through the router's stdin, SIGKILLs
one shard mid-run, and asserts every job still produced exactly one
result frame, in submission order, with every status ok.

--rolling-restart exercises the durable-cache drain protocol end to
end: shard A serves with `--cache-file`, a routed batch runs, then a
`route --drain-shard 0` process drains A (which must snapshot its
cache and exit 0), A restarts on the same address with the same cache
file, the router readmits it, and a second batch must lose zero jobs
while A answers its share from the *restored* cache
(shard0.cache.snapshot_restores >= 1 and shard0.cache.hits >= 1 in the
fleet stats frame). Jobs must be cacheable: deterministic, and not
deadline-capped (deadline/cancel stops are never cached).
"""
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import time


def read_frames(conn: socket.socket, frame_count: int) -> bytes:
    """Reads until `frame_count` end-framed messages have arrived."""
    received = b""
    while received.count(b"\nend\n") < frame_count:
        chunk = conn.recv(1 << 16)
        if not chunk:
            raise SystemExit("server hung up mid-stream")
        received += chunk
    return received


def snapshot_value(body: str, kind: str, name: str) -> float:
    for line in body.splitlines():
        parts = line.split()
        if len(parts) >= 3 and parts[0] == kind and parts[1] == name:
            return float(parts[2])
    raise SystemExit(f"stats frame is missing '{kind} {name}'")


def stats_probe(host: str, port: int, jobs_path: str) -> int:
    with open(jobs_path, "rb") as jobs_file:
        jobs = jobs_file.read()
    job_count = jobs.count(b"pooled-job")
    with socket.create_connection((host, port), timeout=60) as conn_a:
        conn_a.sendall(jobs)  # no half-close: connection A stays live
        results = read_frames(conn_a, job_count)
        if results.count(b"status ok") != job_count:
            print(results.decode(), file=sys.stderr)
            raise SystemExit("not every job succeeded")
        with socket.create_connection((host, port), timeout=60) as conn_b:
            conn_b.sendall(b"pooled-stats v2\nend\n")
            body = read_frames(conn_b, 1).decode()
            sys.stdout.write(body)
            if "pooled-stats-result v2" not in body:
                raise SystemExit("expected a pooled-stats-result frame")
            served = snapshot_value(body, "counter", "serve.jobs_served")
            if served < job_count:
                raise SystemExit(
                    f"jobs_served {served:.0f} < {job_count} jobs sent")
            active = snapshot_value(body, "gauge", "serve.connections_active")
            if active != 2:
                raise SystemExit(f"connections_active {active:.0f} != 2")
            conn_b.shutdown(socket.SHUT_WR)
        conn_a.shutdown(socket.SHUT_WR)
        while conn_a.recv(1 << 16):
            pass
    print(f"stats probe ok: {job_count} jobs reconciled", file=sys.stderr)
    return 0


def spawn_serve(cli, extra_args=(), listen="127.0.0.1:0"):
    """Starts `pooled_cli serve --listen <listen> [extra_args...]`.

    Returns (proc, addr, banner): the stderr text consumed up to and
    including the "listening on <addr>" readiness line, which carries
    the kernel-assigned port -- and, on a warm start, the
    "cache: restored N entries" line that precedes it.
    """
    proc = subprocess.Popen(
        [cli, "serve", "--listen", listen, *extra_args],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    banner = ""
    for _ in range(20):
        line = proc.stderr.readline()
        if not line:
            break
        banner += line
        match = re.search(r"listening on (\S+)", line)
        if match:
            return proc, match.group(1), banner
    proc.kill()
    raise SystemExit(f"shard never came up: {banner!r}")


def route_smoke(cli: str, jobs_path: str) -> int:
    with open(jobs_path, "rb") as jobs_file:
        jobs = jobs_file.read()
    job_count = jobs.count(b"pooled-job")
    if job_count < 4:
        raise SystemExit("route smoke needs a jobs file with >= 4 jobs")
    shard_a, addr_a, _ = spawn_serve(cli)
    shard_b, addr_b, _ = spawn_serve(cli)
    router = subprocess.Popen(
        [cli, "route", "--shard", addr_a, "--shard", addr_b,
         "--no-affinity", "--window", "4"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL)
    try:
        # Feed the whole stream, then SIGKILL shard A while the batch is
        # still in flight. The router must retry A's unanswered jobs on B
        # and keep the merged output in submission order.
        router.stdin.write(jobs)
        router.stdin.flush()
        time.sleep(0.3)
        shard_a.kill()
        router.stdin.close()
        received = router.stdout.read()
        if router.wait(timeout=120) != 0:
            raise SystemExit("router exited nonzero")
    finally:
        for proc in (shard_a, shard_b, router):
            if proc.poll() is None:
                proc.kill()
    results = received.count(b"pooled-result")
    if results != job_count:
        raise SystemExit(
            f"{results} result frames for {job_count} jobs "
            "(lost or duplicated under failover)")
    if received.count(b"status ok") != job_count:
        raise SystemExit("not every job survived the shard kill")
    indices = [int(m.group(1))
               for m in re.finditer(rb"\njob (\d+)\n", received)]
    if indices != list(range(job_count)):
        raise SystemExit(f"results out of submission order: {indices}")
    print(f"route smoke ok: {job_count} jobs, one shard SIGKILLed, "
          "zero lost, order preserved", file=sys.stderr)
    return 0


class PipeFrameReader:
    """End-framed reads from a pipe, carrying leftover bytes between
    calls (one os.read may return the tail of frame N plus the head of
    frame N+1)."""

    def __init__(self, stream):
        self.stream = stream
        self.buffer = b""

    def read_frames(self, frame_count: int) -> bytes:
        while self.buffer.count(b"\nend\n") < frame_count:
            chunk = os.read(self.stream.fileno(), 1 << 16)
            if not chunk:
                raise SystemExit("router hung up mid-stream")
            self.buffer += chunk
        split = 0
        for _ in range(frame_count):
            split = self.buffer.index(b"\nend\n", split) + len(b"\nend\n")
        frames, self.buffer = self.buffer[:split], self.buffer[split:]
        return frames


def run_jobs_direct(addr: str, jobs: bytes, job_count: int) -> None:
    """Streams `jobs` straight at one shard and asserts every job ok."""
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=60) as conn:
        conn.sendall(jobs)
        conn.shutdown(socket.SHUT_WR)
        received = read_frames(conn, job_count)
    if received.count(b"status ok") != job_count:
        raise SystemExit("direct pre-warm batch did not all succeed")


def check_batch(frames: bytes, job_count: int, first_index: int,
                label: str) -> None:
    if frames.count(b"pooled-result") != job_count:
        raise SystemExit(f"{label}: lost or duplicated result frames")
    if frames.count(b"status ok") != job_count:
        raise SystemExit(f"{label}: not every job succeeded")
    indices = [int(m.group(1))
               for m in re.finditer(rb"\njob (\d+)\n", frames)]
    if indices != list(range(first_index, first_index + job_count)):
        raise SystemExit(f"{label}: results out of submission order: "
                         f"{indices}")


def rolling_restart(cli: str, jobs_path: str) -> int:
    """Zero-downtime rolling restart of one shard behind a live router.

    The jobs file must contain deterministic, cacheable jobs (no
    deadline-ms: deadline-stopped reports are never cached, so they can
    never be answered from the restored snapshot).
    """
    with open(jobs_path, "rb") as jobs_file:
        jobs = jobs_file.read()
    job_count = jobs.count(b"pooled-job")
    if job_count < 4:
        raise SystemExit("rolling restart needs a jobs file with >= 4 jobs")
    workdir = tempfile.mkdtemp(prefix="pooled-rolling-")
    cache_file = os.path.join(workdir, "shard_a.cache")
    cache_args = ["--cache", "64", "--cache-file", cache_file]
    shard_a, addr_a, _ = spawn_serve(cli, cache_args)
    shard_b, addr_b, _ = spawn_serve(cli, ["--cache", "64"])
    # Pre-warm shard A's cache with every job key, straight at its
    # address: after the drain snapshots + the restart restores, *any*
    # batch-2 job the router round-robins to A is a guaranteed hit.
    run_jobs_direct(addr_a, jobs, job_count)
    # --window 1 emits every result before the next request is read:
    # with stdin held open between batches, a wider window would hold
    # back the batch tail until more input arrived.
    router = subprocess.Popen(
        [cli, "route", "--shard", addr_a, "--shard", addr_b,
         "--no-affinity", "--window", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL)
    frames = PipeFrameReader(router.stdout)
    try:
        # Batch 1 rides both shards.
        router.stdin.write(jobs)
        router.stdin.flush()
        check_batch(frames.read_frames(job_count), job_count, 0, "batch 1")
        # Drain shard A through the routed drain path: it must snapshot
        # its cache, answer the summary, and exit 0 (the clean-drain
        # exit-status contract). The long-lived router sees A leave and
        # keeps serving from B.
        drain = subprocess.run(
            [cli, "route", "--shard", addr_a, "--drain-shard", "0"],
            stdin=subprocess.DEVNULL, capture_output=True, text=True,
            timeout=120)
        if drain.returncode != 0:
            print(drain.stderr, file=sys.stderr)
            raise SystemExit("drain process exited nonzero")
        if "drained shard 0" not in drain.stderr \
                or "snapshot written" not in drain.stderr:
            print(drain.stderr, file=sys.stderr)
            raise SystemExit("drain summary missing from drain stderr")
        if shard_a.wait(timeout=60) != 0:
            raise SystemExit("drained shard exited nonzero")
        if not os.path.exists(cache_file):
            raise SystemExit("drain left no cache snapshot on disk")
        # Restart A on the same address with the same cache file; the
        # banner must show the warm start.
        shard_a, restarted_addr, banner = spawn_serve(
            cli, cache_args, listen=addr_a)
        if restarted_addr != addr_a:
            raise SystemExit(f"restarted shard moved: {restarted_addr}")
        if "cache: restored" not in banner:
            raise SystemExit(f"restarted shard started cold: {banner!r}")
        # Wait for the router's prober to readmit the restarted shard.
        # shards_alive alone can transiently count a not-yet-reaped stale
        # connection, so also require shard A's own ride-along snapshot
        # to report the restore -- that takes a stats round trip to the
        # live, warm backend.
        for _ in range(100):
            router.stdin.write(b"pooled-stats v2\nend\n")
            router.stdin.flush()
            body = frames.read_frames(1).decode()
            alive = snapshot_value(body, "gauge", "route.shards_alive")
            try:
                restores = snapshot_value(
                    body, "counter", "shard0.cache.snapshot_restores")
            except SystemExit:
                restores = 0.0
            if alive == 2 and restores >= 1:
                break
            time.sleep(0.2)
        else:
            raise SystemExit("restarted shard was never readmitted warm")
        # Batch 2: zero loss, and A must answer its share from the
        # restored snapshot.
        router.stdin.write(jobs)
        router.stdin.flush()
        check_batch(frames.read_frames(job_count), job_count, job_count,
                    "batch 2")
        router.stdin.write(b"pooled-stats v2\nend\n")
        router.stdin.flush()
        body = frames.read_frames(1).decode()
        restores = snapshot_value(
            body, "counter", "shard0.cache.snapshot_restores")
        if restores < 1:
            raise SystemExit("restarted shard reports no snapshot restore")
        hits = snapshot_value(body, "counter", "shard0.cache.hits")
        if hits < 1:
            raise SystemExit(
                "restarted shard answered nothing from the restored cache")
        router.stdin.close()
        if router.wait(timeout=120) != 0:
            raise SystemExit("router exited nonzero")
    finally:
        for proc in (shard_a, shard_b, router):
            if proc.poll() is None:
                proc.kill()
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"rolling restart ok: {2 * job_count} jobs, zero lost, "
          f"{hits:.0f} answered from the restored cache", file=sys.stderr)
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--route":
        if len(sys.argv) != 4:
            print(__doc__, file=sys.stderr)
            return 2
        return route_smoke(sys.argv[2], sys.argv[3])
    if len(sys.argv) >= 2 and sys.argv[1] == "--rolling-restart":
        if len(sys.argv) != 4:
            print(__doc__, file=sys.stderr)
            return 2
        return rolling_restart(sys.argv[2], sys.argv[3])
    if len(sys.argv) >= 2 and sys.argv[1] == "--stats-probe":
        if len(sys.argv) != 5:
            print(__doc__, file=sys.stderr)
            return 2
        return stats_probe(sys.argv[2], int(sys.argv[3]), sys.argv[4])
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    host, port = sys.argv[1], int(sys.argv[2])
    with socket.create_connection((host, port), timeout=60) as conn:
        for path in sys.argv[3:]:
            with open(path, "rb") as jobs:
                conn.sendall(jobs.read())
        conn.shutdown(socket.SHUT_WR)  # "no more requests"
        received = b""
        while True:
            chunk = conn.recv(1 << 16)
            if not chunk:
                break
            received += chunk
    sys.stdout.write(received.decode())
    return 0 if b"pooled-result" in received else 1


if __name__ == "__main__":
    sys.exit(main())
