#!/usr/bin/env python3
"""Minimal socket client for the pooled serve protocol (CI smoke).

Connects to a `pooled_cli serve --listen` server, streams one or more
request files, half-closes the write side, and prints every byte the
server sends back (result frames; the server's blank-line liveness
probes are harmless noise between frames). Exits nonzero if the server
hangs up without sending anything.

Usage: socket_client_smoke.py <host> <port> <jobs-file> [<jobs-file>...]
       socket_client_smoke.py --stats-probe <host> <port> <jobs-file>
       socket_client_smoke.py --route <pooled_cli> <jobs-file>

--stats-probe exercises the v2 `pooled-stats` observability frame under
load: connection A sends the jobs file and reads its results *without*
half-closing (so it stays live), then connection B sends a stats frame
and asserts the snapshot reconciles with the work -- jobs_served covers
every job A sent and connections_active counts both connections. The
stats frame body prints to stdout for the CI log.

--route exercises the shard router's failover end to end: it spawns two
`pooled_cli serve --listen` shards and one `pooled_cli route` process
over them, streams the jobs file through the router's stdin, SIGKILLs
one shard mid-run, and asserts every job still produced exactly one
result frame, in submission order, with every status ok.
"""
import re
import socket
import subprocess
import sys
import time


def read_frames(conn: socket.socket, frame_count: int) -> bytes:
    """Reads until `frame_count` end-framed messages have arrived."""
    received = b""
    while received.count(b"\nend\n") < frame_count:
        chunk = conn.recv(1 << 16)
        if not chunk:
            raise SystemExit("server hung up mid-stream")
        received += chunk
    return received


def snapshot_value(body: str, kind: str, name: str) -> float:
    for line in body.splitlines():
        parts = line.split()
        if len(parts) >= 3 and parts[0] == kind and parts[1] == name:
            return float(parts[2])
    raise SystemExit(f"stats frame is missing '{kind} {name}'")


def stats_probe(host: str, port: int, jobs_path: str) -> int:
    with open(jobs_path, "rb") as jobs_file:
        jobs = jobs_file.read()
    job_count = jobs.count(b"pooled-job")
    with socket.create_connection((host, port), timeout=60) as conn_a:
        conn_a.sendall(jobs)  # no half-close: connection A stays live
        results = read_frames(conn_a, job_count)
        if results.count(b"status ok") != job_count:
            print(results.decode(), file=sys.stderr)
            raise SystemExit("not every job succeeded")
        with socket.create_connection((host, port), timeout=60) as conn_b:
            conn_b.sendall(b"pooled-stats v2\nend\n")
            body = read_frames(conn_b, 1).decode()
            sys.stdout.write(body)
            if "pooled-stats-result v2" not in body:
                raise SystemExit("expected a pooled-stats-result frame")
            served = snapshot_value(body, "counter", "serve.jobs_served")
            if served < job_count:
                raise SystemExit(
                    f"jobs_served {served:.0f} < {job_count} jobs sent")
            active = snapshot_value(body, "gauge", "serve.connections_active")
            if active != 2:
                raise SystemExit(f"connections_active {active:.0f} != 2")
            conn_b.shutdown(socket.SHUT_WR)
        conn_a.shutdown(socket.SHUT_WR)
        while conn_a.recv(1 << 16):
            pass
    print(f"stats probe ok: {job_count} jobs reconciled", file=sys.stderr)
    return 0


def spawn_serve(cli: str) -> "tuple[subprocess.Popen, str]":
    """Starts `pooled_cli serve --listen 127.0.0.1:0`; returns (proc, addr)."""
    proc = subprocess.Popen(
        [cli, "serve", "--listen", "127.0.0.1:0"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    # The "listening on <addr>" stderr line is the readiness signal (and
    # carries the kernel-assigned port).
    line = proc.stderr.readline()
    match = re.search(r"listening on (\S+)", line)
    if not match:
        proc.kill()
        raise SystemExit(f"shard never came up: {line!r}")
    return proc, match.group(1)


def route_smoke(cli: str, jobs_path: str) -> int:
    with open(jobs_path, "rb") as jobs_file:
        jobs = jobs_file.read()
    job_count = jobs.count(b"pooled-job")
    if job_count < 4:
        raise SystemExit("route smoke needs a jobs file with >= 4 jobs")
    shard_a, addr_a = spawn_serve(cli)
    shard_b, addr_b = spawn_serve(cli)
    router = subprocess.Popen(
        [cli, "route", "--shard", addr_a, "--shard", addr_b,
         "--no-affinity", "--window", "4"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL)
    try:
        # Feed the whole stream, then SIGKILL shard A while the batch is
        # still in flight. The router must retry A's unanswered jobs on B
        # and keep the merged output in submission order.
        router.stdin.write(jobs)
        router.stdin.flush()
        time.sleep(0.3)
        shard_a.kill()
        router.stdin.close()
        received = router.stdout.read()
        if router.wait(timeout=120) != 0:
            raise SystemExit("router exited nonzero")
    finally:
        for proc in (shard_a, shard_b, router):
            if proc.poll() is None:
                proc.kill()
    results = received.count(b"pooled-result")
    if results != job_count:
        raise SystemExit(
            f"{results} result frames for {job_count} jobs "
            "(lost or duplicated under failover)")
    if received.count(b"status ok") != job_count:
        raise SystemExit("not every job survived the shard kill")
    indices = [int(m.group(1))
               for m in re.finditer(rb"\njob (\d+)\n", received)]
    if indices != list(range(job_count)):
        raise SystemExit(f"results out of submission order: {indices}")
    print(f"route smoke ok: {job_count} jobs, one shard SIGKILLed, "
          "zero lost, order preserved", file=sys.stderr)
    return 0


def main() -> int:
    if len(sys.argv) >= 2 and sys.argv[1] == "--route":
        if len(sys.argv) != 4:
            print(__doc__, file=sys.stderr)
            return 2
        return route_smoke(sys.argv[2], sys.argv[3])
    if len(sys.argv) >= 2 and sys.argv[1] == "--stats-probe":
        if len(sys.argv) != 5:
            print(__doc__, file=sys.stderr)
            return 2
        return stats_probe(sys.argv[2], int(sys.argv[3]), sys.argv[4])
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    host, port = sys.argv[1], int(sys.argv[2])
    with socket.create_connection((host, port), timeout=60) as conn:
        for path in sys.argv[3:]:
            with open(path, "rb") as jobs:
                conn.sendall(jobs.read())
        conn.shutdown(socket.SHUT_WR)  # "no more requests"
        received = b""
        while True:
            chunk = conn.recv(1 << 16)
            if not chunk:
                break
            received += chunk
    sys.stdout.write(received.decode())
    return 0 if b"pooled-result" in received else 1


if __name__ == "__main__":
    sys.exit(main())
